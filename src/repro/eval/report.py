"""One render path for the CLI's allocation and sweep reports.

``repro allocate`` and ``repro sweep`` each produce a plain-data
report dict first; the human renderer and ``--json`` both consume
that dict, so the two output modes cannot drift apart (and tests that
pin the human strings pin the JSON content too).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.eval.overhead import Overhead
from repro.eval.render import degraded_cell, render_table
from repro.obs.metrics import allocation_metrics
from repro.regalloc.framework import ProgramAllocation
from repro.schema import stamp


def overhead_dict(overhead: Overhead) -> Dict[str, float]:
    return {
        "total": overhead.total,
        "spill": overhead.spill,
        "caller_save": overhead.caller_save,
        "callee_save": overhead.callee_save,
        "shuffle": overhead.shuffle,
    }


def allocation_report(
    allocation: ProgramAllocation,
    overhead: Overhead,
    config: str,
    info: str,
) -> dict:
    """Plain-data record of one ``repro allocate`` run."""
    functions = {}
    for name, fa in allocation.functions.items():
        functions[name] = {
            "in_registers": len(fa.assignment),
            "iterations": fa.iterations,
            "frame_slots": fa.frame_slots,
            "spilled": [repr(reg) for reg in fa.spilled],
            "assignment": {
                repr(reg): phys.name
                for reg, phys in sorted(
                    fa.assignment.items(), key=lambda x: x[0].id
                )
            },
        }
    snapshot = allocation_metrics(allocation)
    report = {
        "allocator": allocation.options.label,
        "config": config,
        "info": info,
        "overhead": overhead_dict(overhead),
        "functions": functions,
        "metrics": {
            "counters": dict(sorted(snapshot.counters.items())),
            "histograms": {
                name: data.as_dict()
                for name, data in sorted(snapshot.histograms.items())
            },
        },
    }
    if allocation.resilience is not None:
        report["resilience"] = allocation.resilience.as_dict()
    return stamp(report)


def render_allocation(report: dict, show_assignment: bool = False) -> str:
    """The classic ``repro allocate`` text output, from the report."""
    overhead = report["overhead"]
    lines = [
        f"allocator: {report['allocator']}   register file: {report['config']}",
        (
            f"overhead: total={overhead['total']:.0f} "
            f"(spill={overhead['spill']:.0f}, "
            f"caller-save={overhead['caller_save']:.0f}, "
            f"callee-save={overhead['callee_save']:.0f}, "
            f"shuffle={overhead['shuffle']:.0f})"
        ),
    ]
    resilience = report.get("resilience")
    if resilience is not None and resilience["degraded"]:
        reasons = "; ".join(
            f"{record['rung']}: {record['error_type']}"
            for record in resilience["demotions"]
        )
        lines.insert(
            1,
            f"DEGRADED to rung {resilience['rung']!r} "
            f"(requested {resilience['requested']!r}; {reasons})",
        )
    for name, record in report["functions"].items():
        spilled = ", ".join(record["spilled"]) or "none"
        lines.append(
            f"\n{name}: {record['in_registers']} ranges in registers, "
            f"{record['iterations']} iteration(s), spilled: {spilled}"
        )
        if show_assignment:
            for reg, phys in record["assignment"].items():
                lines.append(f"    {reg:24} -> {phys}")
    return "\n".join(lines)


def sweep_report(
    workload: str,
    info: str,
    names: Sequence[str],
    configs: Sequence,
    totals: Dict[str, Dict[str, Optional[float]]],
    grid,
    metrics: Optional[dict] = None,
    resilience: Optional[Dict[str, Dict[str, Optional[dict]]]] = None,
) -> dict:
    """Plain-data record of one ``repro sweep`` run.

    ``totals`` maps allocator name to ``{str(config): total overhead}``
    with ``None`` for failed grid points; ``grid`` is the
    :class:`~repro.eval.runner.GridReport` the sweep ran under.
    ``resilience`` (resilient sweeps only) mirrors the shape of
    ``totals`` with each cell's full ``ResilienceReport`` dict — or
    ``None`` for cells served by the primary rung.
    """
    from repro.eval.runner import describe_key

    report = {
        "workload": workload,
        "info": info,
        "configs": [str(config) for config in configs],
        "totals": totals,
        "grid": {
            "computed": len(grid.computed),
            "cached": len(grid.cached),
            "failures": [
                {
                    "key": describe_key(record.key),
                    "error": record.error,
                    "attempts": record.attempts,
                }
                for record in grid.failed
            ],
        },
    }
    if metrics is not None:
        report["metrics"] = metrics
    if resilience is not None:
        report["resilience"] = resilience
    return stamp(report)


def render_sweep(report: dict) -> str:
    """The classic ``repro sweep`` overhead table, from the report.

    Cells a resilient sweep served from a fallback rung render as
    ``deg[<rung>] <total>`` so a recovered point is never mistaken for
    the requested allocator's own number; unrecovered points stay
    ``ERR``.
    """
    resilience = report.get("resilience") or {}
    header = ["allocator"] + list(report["configs"])
    rows = []
    for name, totals in report["totals"].items():
        row = [name]
        for config in report["configs"]:
            total = totals.get(config)
            if total is None:
                row.append("ERR")
                continue
            cell = resilience.get(name, {}).get(config)
            if cell is not None and cell["degraded"]:
                row.append(degraded_cell(total, cell["rung"]))
            else:
                row.append(f"{total:.0f}")
        rows.append(row)
    return render_table(
        f"total overhead for {report['workload']!r} ({report['info']} info)",
        header,
        rows,
    )


def dump_json(report: dict) -> str:
    return json.dumps(report, indent=2, sort_keys=True)
