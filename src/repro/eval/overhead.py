"""Overhead accounting: the paper's register-allocation cost model.

The register allocation cost of a function is the weighted count of
overhead operations in the final code:

* **spill** — loads/stores moving a spilled value to and from memory,
* **caller-save** — saves/restores around calls for live ranges held
  in caller-save registers,
* **callee-save** — entry/exit saves/restores of callee-save
  registers the function uses,
* **shuffle** — register-to-register moves that survived coalescing
  (copies whose operands landed in different physical registers).

Weights are exact execution counts from a profile, so the analytic
total equals what a re-execution of the allocated code would count —
an identity the test suite verifies against the machine interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.frequency import BlockWeights
from repro.ir.instructions import Copy
from repro.profile.profile import Profile
from repro.regalloc.framework import FunctionAllocation, ProgramAllocation
from repro.regalloc.spillinstr import OverheadKind, SpillLoad, SpillStore


@dataclass(frozen=True)
class Overhead:
    """Weighted overhead-operation counts, by component."""

    spill: float = 0.0
    caller_save: float = 0.0
    callee_save: float = 0.0
    shuffle: float = 0.0

    @property
    def total(self) -> float:
        return self.spill + self.caller_save + self.callee_save + self.shuffle

    @property
    def call_cost(self) -> float:
        """The paper's "call cost": caller-save plus callee-save."""
        return self.caller_save + self.callee_save

    def __add__(self, other: "Overhead") -> "Overhead":
        return Overhead(
            spill=self.spill + other.spill,
            caller_save=self.caller_save + other.caller_save,
            callee_save=self.callee_save + other.callee_save,
            shuffle=self.shuffle + other.shuffle,
        )

    def __repr__(self) -> str:
        return (
            f"Overhead(total={self.total:.0f}: spill={self.spill:.0f}, "
            f"caller={self.caller_save:.0f}, callee={self.callee_save:.0f}, "
            f"shuffle={self.shuffle:.0f})"
        )


def function_overhead(
    allocation: FunctionAllocation, counts: BlockWeights
) -> Overhead:
    """Overhead of one allocated function under ``counts``."""
    spill = caller = callee = shuffle = 0.0
    assignment = allocation.assignment
    for block in allocation.func.blocks:
        weight = counts.weight(block)
        if weight == 0.0:
            continue
        for instr in block.instrs:
            if isinstance(instr, (SpillLoad, SpillStore)):
                if instr.kind is OverheadKind.SPILL:
                    spill += weight
                elif instr.kind is OverheadKind.CALLER_SAVE:
                    caller += weight
                else:
                    callee += weight
            elif isinstance(instr, Copy):
                if assignment[instr.dst] != assignment[instr.src]:
                    shuffle += weight
    return Overhead(
        spill=spill, caller_save=caller, callee_save=callee, shuffle=shuffle
    )


def program_overhead(
    allocation: ProgramAllocation, profile: Profile
) -> Overhead:
    """Total overhead of an allocated program under a profile.

    ``profile`` was gathered on the *original* program; the block
    counts are translated onto the allocated clone through the clone
    maps recorded at allocation time.
    """
    total = Overhead()
    for name, fa in allocation.functions.items():
        record = allocation.clone.functions[name]
        counts = BlockWeights(
            weights={
                clone_block: float(profile.count(orig_block))
                for orig_block, clone_block in record.block_map.items()
            },
            entry_weight=float(profile.entries(name)),
        )
        total = total + function_overhead(fa, counts)
    return total


def overhead_by_function(
    allocation: ProgramAllocation, profile: Profile
) -> Dict[str, Overhead]:
    """Per-function overhead breakdown (used by reports and tests)."""
    result: Dict[str, Overhead] = {}
    for name, fa in allocation.functions.items():
        record = allocation.clone.functions[name]
        counts = BlockWeights(
            weights={
                clone_block: float(profile.count(orig_block))
                for orig_block, clone_block in record.block_map.items()
            },
            entry_weight=float(profile.entries(name)),
        )
        result[name] = function_overhead(fa, counts)
    return result
