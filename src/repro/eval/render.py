"""Plain-text rendering of experiment results."""

from __future__ import annotations

from typing import List, Sequence


def format_value(value: float) -> str:
    if value == float("inf"):
        return "inf"
    if abs(value) >= 10000:
        return f"{value:.3g}"
    return f"{value:.2f}"


def degraded_cell(total: float, rung: str) -> str:
    """Sweep cell for a grid point served by a fallback rung.

    A degraded point still has a real (verifier-clean) total, but
    printing the bare number would silently pass a lower rung's
    overhead off as the requested allocator's — so the cell names the
    rung that actually produced it.
    """
    return f"deg[{rung}] {total:.0f}"


def render_table(
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence[str]],
) -> str:
    """Render an aligned ASCII table with a title line."""
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    separator = "-" * len(line(header))
    parts: List[str] = [title, separator, line(header), separator]
    parts.extend(line(row) for row in rows)
    parts.append(separator)
    return "\n".join(parts)
