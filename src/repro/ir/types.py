"""Value types for the repro IR.

The IR is deliberately small: the machine model has two register banks
(integer and floating point), so the IR distinguishes exactly two value
types.  Booleans are represented as integers (0 / 1), matching the MIPS
convention the paper's compiler (cmcc) targets.
"""

from __future__ import annotations

import enum


class ValueType(enum.Enum):
    """The type of an IR value; selects the register bank."""

    INT = "int"
    FLOAT = "float"

    # Members are singletons, so identity hashing is equivalent to the
    # Enum default (which hashes the member name in Python) — and value
    # types key dictionaries in the allocator's hottest loops.
    __hash__ = object.__hash__

    @property
    def is_int(self) -> bool:
        return self is ValueType.INT

    @property
    def is_float(self) -> bool:
        return self is ValueType.FLOAT

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Shorthand aliases used throughout the code base.
INT = ValueType.INT
FLOAT = ValueType.FLOAT

#: The 32-bit two's-complement range ``ftoi`` saturates to.
INT_MIN = -(2**31)
INT_MAX = 2**31 - 1


def saturating_f2i(value: float) -> int:
    """``ftoi`` semantics: truncate toward zero, saturating at int32.

    Plain ``int(x)`` raises on infinities and NaN, which generated
    programs can legitimately produce (float overflow to ``inf``).
    Following the MIPS ``trunc.w.s`` convention, out-of-range values
    saturate to the nearest representable integer and NaN converts
    to 0.  Every consumer of ``F2I`` — both interpreters and the
    constant folder — must use this one definition, or differential
    testing reports false mismatches.
    """
    if value != value:  # NaN
        return 0
    if value >= INT_MAX:
        return INT_MAX
    if value <= INT_MIN:
        return INT_MIN
    return int(value)
