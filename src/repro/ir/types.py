"""Value types for the repro IR.

The IR is deliberately small: the machine model has two register banks
(integer and floating point), so the IR distinguishes exactly two value
types.  Booleans are represented as integers (0 / 1), matching the MIPS
convention the paper's compiler (cmcc) targets.
"""

from __future__ import annotations

import enum


class ValueType(enum.Enum):
    """The type of an IR value; selects the register bank."""

    INT = "int"
    FLOAT = "float"

    @property
    def is_int(self) -> bool:
        return self is ValueType.INT

    @property
    def is_float(self) -> bool:
        return self is ValueType.FLOAT

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Shorthand aliases used throughout the code base.
INT = ValueType.INT
FLOAT = ValueType.FLOAT
