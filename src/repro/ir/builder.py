"""Convenience builder for constructing IR by hand.

The frontend lowers ASTs through this builder, and tests use it to
construct small functions directly.  The builder tracks a current
insertion block and provides one method per instruction kind, returning
the destination register where there is one.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    BinaryOpcode,
    BinOp,
    Branch,
    Call,
    Const,
    Copy,
    Jump,
    Load,
    Ret,
    Store,
    UnaryOp,
    UnaryOpcode,
)
from repro.ir.types import FLOAT, INT, ValueType
from repro.ir.values import VReg


class IRBuilder:
    """Builds instructions into a function, one block at a time."""

    def __init__(self, func: Function):
        self.func = func
        self.block: Optional[BasicBlock] = None

    # ------------------------------------------------------------------
    # block management
    # ------------------------------------------------------------------

    def new_block(self, hint: str = "bb") -> BasicBlock:
        return self.func.new_block(hint)

    def set_block(self, block: BasicBlock) -> BasicBlock:
        self.block = block
        return block

    def start_block(self, hint: str = "bb") -> BasicBlock:
        """Create a block and make it the insertion point."""
        return self.set_block(self.new_block(hint))

    @property
    def terminated(self) -> bool:
        """True when the current block already ends in a terminator."""
        return self.block is not None and self.block.terminator is not None

    def _emit(self, instr):
        if self.block is None:
            raise ValueError("no insertion block set")
        return self.block.append(instr)

    # ------------------------------------------------------------------
    # value-producing instructions
    # ------------------------------------------------------------------

    def const(self, value, vtype: Optional[ValueType] = None, name: Optional[str] = None) -> VReg:
        if vtype is None:
            vtype = FLOAT if isinstance(value, float) else INT
        dst = self.func.new_vreg(vtype, name)
        self._emit(Const(dst, value))
        return dst

    def binop(self, op: BinaryOpcode, lhs: VReg, rhs: VReg, name: Optional[str] = None) -> VReg:
        if lhs.vtype is not rhs.vtype:
            raise ValueError(f"mixed-bank binop: {lhs} {op.value} {rhs}")
        result_type = INT if op.is_comparison else lhs.vtype
        dst = self.func.new_vreg(result_type, name)
        self._emit(BinOp(op, dst, lhs, rhs))
        return dst

    def unop(self, op: UnaryOpcode, src: VReg, name: Optional[str] = None) -> VReg:
        if op is UnaryOpcode.I2F:
            result_type: ValueType = FLOAT
        elif op is UnaryOpcode.F2I:
            result_type = INT
        else:
            result_type = src.vtype
        dst = self.func.new_vreg(result_type, name)
        self._emit(UnaryOp(op, dst, src))
        return dst

    def copy(self, src: VReg, dst: Optional[VReg] = None, name: Optional[str] = None) -> VReg:
        if dst is None:
            dst = self.func.new_vreg(src.vtype, name)
        self._emit(Copy(dst, src))
        return dst

    def copy_to(self, dst: VReg, src: VReg) -> VReg:
        """Copy into an existing register (variable assignment)."""
        self._emit(Copy(dst, src))
        return dst

    def load(self, array: str, index: VReg, vtype: ValueType, name: Optional[str] = None) -> VReg:
        dst = self.func.new_vreg(vtype, name)
        self._emit(Load(dst, array, index))
        return dst

    def store(self, array: str, index: VReg, value: VReg) -> None:
        self._emit(Store(array, index, value))

    def call(
        self,
        callee: str,
        args: List[VReg],
        return_type: Optional[ValueType] = None,
        name: Optional[str] = None,
    ) -> Optional[VReg]:
        dst = self.func.new_vreg(return_type, name) if return_type is not None else None
        self._emit(Call(dst, callee, args))
        return dst

    # ------------------------------------------------------------------
    # terminators
    # ------------------------------------------------------------------

    def branch(self, cond: VReg, then_block: BasicBlock, else_block: BasicBlock) -> None:
        self._emit(Branch(cond, then_block, else_block))

    def jump(self, target: BasicBlock) -> None:
        self._emit(Jump(target))

    def ret(self, value: Optional[VReg] = None) -> None:
        self._emit(Ret(value))
