"""A parser for the textual IR the printer emits.

Round-trips :func:`repro.ir.printer.format_program`: useful for
writing IR-level test cases directly, shipping reduced repros, and
feeding the CLI with `.ir` files.  Covers *pre-allocation* IR only —
the spill/save pseudo-instructions the allocator inserts are a
diagnostic rendering, not part of the language.

The grammar is exactly the printer's output format::

    global @name[size]:type [= {v, v, ...}]

    func @name(%i0:argname, %f1) -> int|float|void {
    blockname:
        %i2 = const 31
        %i3 = mul %i0:argname, %i2
        %i4 = copy %i3
        %f5 = i2f %i4
        %f6 = load @arr[%i2]
        store @arr[%i2] = %f6
        %i7 = call @f(%i3, %i4)
        call @g()
        br %i7, then1, else2
        jmp join3
        ret %i7
        ret
    }
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.ir.function import BasicBlock, Function, Program
from repro.ir.instructions import (
    BinaryOpcode,
    BinOp,
    Branch,
    Call,
    Const,
    Copy,
    Jump,
    Load,
    Ret,
    Store,
    UnaryOp,
    UnaryOpcode,
)
from repro.ir.types import FLOAT, INT, ValueType
from repro.ir.values import GlobalArray, VReg


class IRParseError(Exception):
    """The text does not match the printer's format."""

    def __init__(self, message: str, line_no: int = 0):
        if line_no:
            message = f"line {line_no}: {message}"
        super().__init__(message)


_GLOBAL = re.compile(
    r"global @(?P<name>\w+)\[(?P<size>\d+)\]:(?P<type>int|float)"
    r"(?:\s*=\s*\{(?P<init>[^}]*)\})?$"
)
_FUNC = re.compile(
    r"func @(?P<name>\w+)\((?P<params>[^)]*)\) -> (?P<ret>int|float|void) \{$"
)
_REG = r"%[if]\d+(?::[\w.$]+)?"
_REG_RE = re.compile(r"%(?P<bank>[if])(?P<id>\d+)(?::(?P<name>[\w.$]+))?$")
_LABEL = re.compile(r"(?P<name>\w+):$")

_BINOPS = {op.value: op for op in BinaryOpcode}
_UNOPS = {op.value: op for op in UnaryOpcode}


class _FunctionParser:
    def __init__(self, program: Program):
        self.program = program
        self.regs: Dict[Tuple[str, int], VReg] = {}
        self.func: Optional[Function] = None
        self.blocks: Dict[str, BasicBlock] = {}
        #: (block, branch text, line) fixups resolved after all labels exist.
        self.pending: List[Tuple[BasicBlock, str, int]] = []

    def reg(self, text: str, line_no: int) -> VReg:
        match = _REG_RE.match(text.strip())
        if not match:
            raise IRParseError(f"bad register {text!r}", line_no)
        bank = INT if match.group("bank") == "i" else FLOAT
        key = (match.group("bank"), int(match.group("id")))
        existing = self.regs.get(key)
        if existing is None:
            assert self.func is not None
            existing = self.func.new_vreg(bank, match.group("name"))
            self.regs[key] = existing
        return existing


def parse_ir(text: str, name: str = "parsed") -> Program:
    """Parse printer-format IR text into a verified-shape Program."""
    program = Program(name)
    lines = text.splitlines()
    parser: Optional[_FunctionParser] = None
    block: Optional[BasicBlock] = None

    for line_no, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("global "):
            _parse_global(program, line, line_no)
            continue
        if line.startswith("func "):
            parser = _FunctionParser(program)
            block = None
            _parse_func_header(program, parser, line, line_no)
            continue
        if line == "}":
            if parser is None:
                raise IRParseError("unmatched '}'", line_no)
            _resolve_branches(parser)
            parser = None
            block = None
            continue
        if parser is None:
            raise IRParseError(f"statement outside a function: {line!r}", line_no)
        label = _LABEL.match(line)
        if label:
            block = BasicBlock(label.group("name"))
            assert parser.func is not None
            parser.func.blocks.append(block)
            parser.blocks[block.name] = block
            continue
        if block is None:
            raise IRParseError("instruction before any block label", line_no)
        _parse_instr(parser, block, line, line_no)

    if parser is not None:
        raise IRParseError("unterminated function (missing '}')", len(lines))
    return program


# ----------------------------------------------------------------------


def _parse_global(program: Program, line: str, line_no: int) -> None:
    match = _GLOBAL.match(line)
    if not match:
        raise IRParseError(f"bad global declaration: {line!r}", line_no)
    vtype = INT if match.group("type") == "int" else FLOAT
    init = None
    if match.group("init") is not None:
        text = match.group("init").strip()
        init = [float(v) for v in text.split(",")] if text else []
    program.add_global(
        GlobalArray(match.group("name"), vtype, int(match.group("size")), init)
    )


def _parse_func_header(
    program: Program, parser: _FunctionParser, line: str, line_no: int
) -> None:
    match = _FUNC.match(line)
    if not match:
        raise IRParseError(f"bad function header: {line!r}", line_no)
    param_types: List[ValueType] = []
    param_names: List[str] = []
    param_keys: List[Tuple[str, int]] = []
    params_text = match.group("params").strip()
    if params_text:
        for part in params_text.split(","):
            reg_match = _REG_RE.match(part.strip())
            if not reg_match:
                raise IRParseError(f"bad parameter {part!r}", line_no)
            param_types.append(INT if reg_match.group("bank") == "i" else FLOAT)
            param_names.append(reg_match.group("name") or f"arg{len(param_names)}")
            param_keys.append(
                (reg_match.group("bank"), int(reg_match.group("id")))
            )
    ret_text = match.group("ret")
    return_type = None if ret_text == "void" else (INT if ret_text == "int" else FLOAT)
    func = Function(
        match.group("name"),
        param_types=param_types,
        return_type=return_type,
        param_names=param_names,
    )
    parser.func = func
    for key, param in zip(param_keys, func.params):
        parser.regs[key] = param
    program.add_function(func)


def _resolve_branches(parser: _FunctionParser) -> None:
    for block, text, line_no in parser.pending:
        parts = [p.strip() for p in text.split(",")]
        targets = []
        for part in parts:
            target = parser.blocks.get(part)
            if target is None:
                raise IRParseError(f"unknown block {part!r}", line_no)
            targets.append(target)
        term = block.instrs[-1]
        if isinstance(term, Branch):
            term.then_block, term.else_block = targets
        else:
            assert isinstance(term, Jump)
            (term.target,) = targets
    parser.pending.clear()


def _parse_instr(
    parser: _FunctionParser, block: BasicBlock, line: str, line_no: int
) -> None:
    reg = lambda t: parser.reg(t, line_no)  # noqa: E731 - local shorthand

    if line.startswith("br "):
        cond_text, _, targets = line[3:].partition(",")
        placeholder = Branch(reg(cond_text), block, block)
        block.instrs.append(placeholder)
        parser.pending.append((block, targets.strip(), line_no))
        return
    if line.startswith("jmp "):
        placeholder = Jump(block)
        block.instrs.append(placeholder)
        parser.pending.append((block, line[4:].strip(), line_no))
        return
    if line == "ret":
        block.instrs.append(Ret())
        return
    if line.startswith("ret "):
        block.instrs.append(Ret(reg(line[4:])))
        return
    if line.startswith("store "):
        match = re.match(
            rf"store @(?P<arr>\w+)\[(?P<idx>{_REG})\] = (?P<val>{_REG})$", line
        )
        if not match:
            raise IRParseError(f"bad store: {line!r}", line_no)
        block.instrs.append(
            Store(match.group("arr"), reg(match.group("idx")), reg(match.group("val")))
        )
        return
    if line.startswith("call "):
        _parse_call(parser, block, None, line[5:], line_no)
        return

    # Everything else is "dst = ...".
    dst_text, eq, rest = line.partition(" = ")
    if not eq:
        raise IRParseError(f"unrecognized instruction: {line!r}", line_no)
    dst = reg(dst_text)
    rest = rest.strip()
    if rest.startswith("const "):
        value_text = rest[6:]
        value = float(value_text) if dst.vtype.is_float else int(float(value_text))
        block.instrs.append(Const(dst, value))
        return
    if rest.startswith("copy "):
        block.instrs.append(Copy(dst, reg(rest[5:])))
        return
    if rest.startswith("load "):
        match = re.match(rf"load @(?P<arr>\w+)\[(?P<idx>{_REG})\]$", rest)
        if not match:
            raise IRParseError(f"bad load: {line!r}", line_no)
        block.instrs.append(Load(dst, match.group("arr"), reg(match.group("idx"))))
        return
    if rest.startswith("call "):
        _parse_call(parser, block, dst, rest[5:], line_no)
        return
    opcode, _, operands = rest.partition(" ")
    if opcode in _UNOPS:
        block.instrs.append(UnaryOp(_UNOPS[opcode], dst, reg(operands)))
        return
    if opcode in _BINOPS:
        lhs_text, comma, rhs_text = operands.partition(",")
        if not comma:
            raise IRParseError(f"binary op needs two operands: {line!r}", line_no)
        block.instrs.append(
            BinOp(_BINOPS[opcode], dst, reg(lhs_text), reg(rhs_text))
        )
        return
    raise IRParseError(f"unknown opcode {opcode!r}", line_no)


def _parse_call(
    parser: _FunctionParser,
    block: BasicBlock,
    dst: Optional[VReg],
    rest: str,
    line_no: int,
) -> None:
    match = re.match(r"@(?P<callee>\w+)\((?P<args>.*)\)$", rest.strip())
    if not match:
        raise IRParseError(f"bad call: {rest!r}", line_no)
    args_text = match.group("args").strip()
    args = []
    if args_text:
        args = [parser.reg(a, line_no) for a in args_text.split(",")]
    block.instrs.append(Call(dst, match.group("callee"), args))
