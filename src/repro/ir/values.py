"""IR values: virtual registers and global arrays.

Every operand of every instruction is a virtual register (the machine
model is a RISC processor that requires all operands to reside in
registers); constants are materialized by explicit ``Const``
instructions.  Global arrays are the only form of addressable memory
the mini language exposes, which keeps the interpreter and the spill
machinery simple while still producing realistic memory traffic.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.types import ValueType


class VReg:
    """A virtual register.

    Virtual registers are unique per function and are compared by
    identity — the inherited ``object`` equality and hash express
    exactly that, at C speed (registers are dictionary keys in every
    hot analysis loop).  ``name`` is a debugging aid (the source
    variable the register was created for, when there is one).
    """

    __slots__ = ("id", "vtype", "name")

    def __init__(self, reg_id: int, vtype: ValueType, name: Optional[str] = None):
        self.id = reg_id
        self.vtype = vtype
        self.name = name

    def __repr__(self) -> str:
        base = "%f" if self.vtype.is_float else "%i"
        if self.name:
            return f"{base}{self.id}:{self.name}"
        return f"{base}{self.id}"


class GlobalArray:
    """A module-level array of ``size`` elements of type ``vtype``.

    ``init`` optionally gives initial element values; elements without
    an initializer start at zero, as in C statics.
    """

    __slots__ = ("name", "vtype", "size", "init")

    def __init__(
        self,
        name: str,
        vtype: ValueType,
        size: int,
        init: Optional[list] = None,
    ):
        if size <= 0:
            raise ValueError(f"global array {name!r} must have positive size")
        if init is not None and len(init) > size:
            raise ValueError(f"initializer for {name!r} longer than array")
        self.name = name
        self.vtype = vtype
        self.size = size
        self.init = list(init) if init is not None else None

    def initial_values(self) -> list:
        """Return the full initial contents of the array."""
        zero = 0.0 if self.vtype.is_float else 0
        values = [zero] * self.size
        if self.init is not None:
            for i, v in enumerate(self.init):
                values[i] = float(v) if self.vtype.is_float else int(v)
        return values

    def __repr__(self) -> str:
        return f"@{self.name}[{self.size}]:{self.vtype}"
