"""Structural verification of IR.

``verify_function`` checks the invariants every pass relies on:
terminated blocks, branch targets inside the function, type-correct
operands, definite assignment (every use dominated by some def on every
path — approximated by a forward may-be-uninitialized dataflow), and
call signatures matching their callees when a program is supplied.

Verification failures raise :class:`IRVerificationError` with a message
naming the offending function, block and instruction.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.ir.function import BasicBlock, Function, Program
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Copy,
    Load,
    Ret,
    Store,
    UnaryOp,
    UnaryOpcode,
)
from repro.ir.types import FLOAT, INT


class IRVerificationError(Exception):
    """Raised when an IR invariant is violated."""


def _fail(func: Function, block: Optional[BasicBlock], message: str) -> None:
    where = f"{func.name}/{block.name}" if block is not None else func.name
    raise IRVerificationError(f"{where}: {message}")


def verify_function(func: Function, program: Optional[Program] = None) -> None:
    """Check all structural invariants of ``func``.

    When ``program`` is given, call instructions are additionally
    checked against their callee's signature and globals against their
    declarations.
    """
    if not func.blocks:
        _fail(func, None, "function has no blocks")
    block_set = set(func.blocks)
    names: Set[str] = set()
    for block in func.blocks:
        if block.name in names:
            _fail(func, block, "duplicate block name")
        names.add(block.name)
        _verify_block(func, block, block_set, program)
    _verify_definite_assignment(func)


def verify_program(program: Program) -> None:
    """Verify every function of ``program`` (with signature checking)."""
    for func in program.functions.values():
        verify_function(func, program)


def _verify_block(
    func: Function,
    block: BasicBlock,
    block_set: Set[BasicBlock],
    program: Optional[Program],
) -> None:
    if block.terminator is None:
        _fail(func, block, "block does not end in a terminator")
    for i, instr in enumerate(block.instrs):
        if instr.is_terminator and i != len(block.instrs) - 1:
            _fail(func, block, f"terminator {instr!r} in middle of block")
        _verify_instr(func, block, instr, block_set, program)


def _verify_instr(func, block, instr, block_set, program) -> None:
    if isinstance(instr, BinOp):
        if instr.lhs.vtype is not instr.rhs.vtype:
            _fail(func, block, f"mixed-bank operands in {instr!r}")
        expected = INT if instr.op.is_comparison else instr.lhs.vtype
        if instr.dst.vtype is not expected:
            _fail(func, block, f"bad result bank in {instr!r}")
    elif isinstance(instr, UnaryOp):
        if instr.op is UnaryOpcode.I2F:
            ok = instr.src.vtype is INT and instr.dst.vtype is FLOAT
        elif instr.op is UnaryOpcode.F2I:
            ok = instr.src.vtype is FLOAT and instr.dst.vtype is INT
        else:
            ok = instr.src.vtype is instr.dst.vtype
        if not ok:
            _fail(func, block, f"bad banks in {instr!r}")
    elif isinstance(instr, Copy):
        if instr.dst.vtype is not instr.src.vtype:
            _fail(func, block, f"copy between banks: {instr!r}")
    elif isinstance(instr, (Load, Store)):
        index = instr.index
        if index.vtype is not INT:
            _fail(func, block, f"non-integer index in {instr!r}")
        if program is not None:
            array = program.globals.get(instr.array)
            if array is None:
                _fail(func, block, f"unknown global @{instr.array}")
            value = instr.dst if isinstance(instr, Load) else instr.value
            if value.vtype is not array.vtype:
                _fail(func, block, f"bank mismatch with @{instr.array} in {instr!r}")
    elif isinstance(instr, Call) and program is not None:
        callee = program.functions.get(instr.callee)
        if callee is None:
            _fail(func, block, f"call to unknown function @{instr.callee}")
        if len(instr.args) != len(callee.params):
            _fail(func, block, f"arity mismatch in {instr!r}")
        for arg, param in zip(instr.args, callee.params):
            if arg.vtype is not param.vtype:
                _fail(func, block, f"argument bank mismatch in {instr!r}")
        if instr.dst is not None:
            if callee.return_type is None:
                _fail(func, block, f"void call produces a value: {instr!r}")
            if instr.dst.vtype is not callee.return_type:
                _fail(func, block, f"return bank mismatch in {instr!r}")
    elif isinstance(instr, Branch):
        if instr.cond.vtype is not INT:
            _fail(func, block, f"non-integer branch condition in {instr!r}")
        for target in instr.successors():
            if target not in block_set:
                _fail(func, block, f"branch to foreign block {target.name}")
    elif isinstance(instr, Ret):
        if func.return_type is None and instr.value is not None:
            _fail(func, block, "return with value in void function")
        if func.return_type is not None:
            if instr.value is None:
                _fail(func, block, "return without value in non-void function")
            elif instr.value.vtype is not func.return_type:
                _fail(func, block, f"return bank mismatch in {instr!r}")


def _verify_definite_assignment(func: Function) -> None:
    """Forward dataflow: every use must be reached by a def on all paths.

    ``defined[b]`` is the set of registers definitely assigned at entry
    to ``b`` (intersection over predecessors).  Parameters are defined
    at entry.
    """
    preds = func.predecessors()
    all_regs = set(func.vregs())
    defined: Dict[BasicBlock, Set] = {b: set(all_regs) for b in func.blocks}
    defined[func.entry] = set(func.params)
    changed = True
    while changed:
        changed = False
        for block in func.blocks:
            if block is func.entry:
                incoming = set(func.params)
            else:
                incoming = set(all_regs)
                for pred in preds[block]:
                    incoming &= _defined_at_exit(pred, defined[pred])
                if not preds[block]:
                    incoming = set(func.params)
            if incoming != defined[block]:
                defined[block] = incoming
                changed = True
    for block in func.blocks:
        live = set(defined[block])
        for instr in block.instrs:
            for reg in instr.uses():
                if reg not in live:
                    _fail(func, block, f"use of possibly-undefined {reg} in {instr!r}")
            live.update(instr.defs())


def _defined_at_exit(block: BasicBlock, at_entry: Set) -> Set:
    result = set(at_entry)
    for instr in block.instrs:
        result.update(instr.defs())
    return result
