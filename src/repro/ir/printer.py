"""Textual rendering of IR programs, functions and blocks.

The format is purely for debugging and test goldens; there is no
parser for it (the mini-C frontend is the textual entry point).
"""

from __future__ import annotations

from repro.ir.function import BasicBlock, Function, Program


def format_block(block: BasicBlock) -> str:
    lines = [f"{block.name}:"]
    lines.extend(f"    {instr!r}" for instr in block.instrs)
    return "\n".join(lines)


def format_function(func: Function) -> str:
    params = ", ".join(repr(p) for p in func.params)
    ret = str(func.return_type) if func.return_type is not None else "void"
    header = f"func @{func.name}({params}) -> {ret} {{"
    body = "\n".join(format_block(b) for b in func.blocks)
    return f"{header}\n{body}\n}}"


def format_global(array) -> str:
    text = f"global @{array.name}[{array.size}]:{array.vtype}"
    if array.init is not None:
        values = ", ".join(str(v) for v in array.init)
        text += f" = {{{values}}}"
    return text


def format_program(program: Program) -> str:
    parts = []
    for array in program.globals.values():
        parts.append(format_global(array))
    for func in program.functions.values():
        parts.append(format_function(func))
    return "\n\n".join(parts)
