"""Deep-cloning of IR functions and programs.

Register allocation rewrites functions in place (spill code, save and
restore code, coalesced copies), and the experiments allocate the same
program under many allocators and register files.  Cloning gives every
allocation run a private copy, with block/register maps so profiles
gathered on the original can be carried over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.ir.function import BasicBlock, Function, Program
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Const,
    Copy,
    Instr,
    Jump,
    Load,
    Ret,
    Store,
    UnaryOp,
)
from repro.ir.values import VReg


@dataclass
class FunctionClone:
    """A cloned function plus the original-to-clone maps."""

    func: Function
    block_map: Dict[BasicBlock, BasicBlock]
    vreg_map: Dict[VReg, VReg]


@dataclass
class ProgramClone:
    """A cloned program plus per-function clone records."""

    program: Program
    functions: Dict[str, FunctionClone]


def clone_function(func: Function) -> FunctionClone:
    """Deep-copy ``func``: fresh blocks, instructions and registers."""
    new_func = Function(
        func.name,
        param_types=[p.vtype for p in func.params],
        return_type=func.return_type,
        param_names=[p.name or f"arg{i}" for i, p in enumerate(func.params)],
    )
    vreg_map: Dict[VReg, VReg] = dict(zip(func.params, new_func.params))

    def map_reg(reg: VReg) -> VReg:
        mapped = vreg_map.get(reg)
        if mapped is None:
            mapped = new_func.new_vreg(reg.vtype, reg.name)
            vreg_map[reg] = mapped
        return mapped

    block_map: Dict[BasicBlock, BasicBlock] = {}
    for block in func.blocks:
        new_block = BasicBlock(block.name)
        block_map[block] = new_block
        new_func.blocks.append(new_block)

    for block in func.blocks:
        new_block = block_map[block]
        for instr in block.instrs:
            new_block.instrs.append(_clone_instr(instr, map_reg, block_map))
    return FunctionClone(func=new_func, block_map=block_map, vreg_map=vreg_map)


def clone_program(program: Program) -> ProgramClone:
    """Deep-copy ``program`` (globals are shared declarations, immutable)."""
    new_program = Program(program.name)
    for array in program.globals.values():
        new_program.add_global(array)
    clones: Dict[str, FunctionClone] = {}
    for func in program.functions.values():
        record = clone_function(func)
        new_program.add_function(record.func)
        clones[func.name] = record
    return ProgramClone(program=new_program, functions=clones)


def _clone_instr(instr: Instr, map_reg, block_map) -> Instr:
    if isinstance(instr, Const):
        return Const(map_reg(instr.dst), instr.value)
    if isinstance(instr, BinOp):
        return BinOp(instr.op, map_reg(instr.dst), map_reg(instr.lhs), map_reg(instr.rhs))
    if isinstance(instr, UnaryOp):
        return UnaryOp(instr.op, map_reg(instr.dst), map_reg(instr.src))
    if isinstance(instr, Copy):
        return Copy(map_reg(instr.dst), map_reg(instr.src))
    if isinstance(instr, Load):
        return Load(map_reg(instr.dst), instr.array, map_reg(instr.index))
    if isinstance(instr, Store):
        return Store(instr.array, map_reg(instr.index), map_reg(instr.value))
    if isinstance(instr, Call):
        dst = map_reg(instr.dst) if instr.dst is not None else None
        return Call(dst, instr.callee, [map_reg(a) for a in instr.args])
    if isinstance(instr, Branch):
        return Branch(
            map_reg(instr.cond),
            block_map[instr.then_block],
            block_map[instr.else_block],
        )
    if isinstance(instr, Jump):
        return Jump(block_map[instr.target])
    if isinstance(instr, Ret):
        value = map_reg(instr.value) if instr.value is not None else None
        return Ret(value)
    raise TypeError(f"cannot clone {instr!r}")
