"""Deep-cloning of IR functions and programs.

Register allocation rewrites functions in place (spill code, save and
restore code, coalesced copies), and the experiments allocate the same
program under many allocators and register files.  Cloning gives every
allocation run a private copy, with block/register maps so profiles
gathered on the original can be carried over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.ir.function import BasicBlock, Function, Program
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Const,
    Copy,
    Instr,
    Jump,
    Load,
    Ret,
    Store,
    UnaryOp,
)
from repro.ir.values import VReg


@dataclass
class FunctionClone:
    """A cloned function plus the original-to-clone maps."""

    func: Function
    block_map: Dict[BasicBlock, BasicBlock]
    vreg_map: Dict[VReg, VReg]


@dataclass
class ProgramClone:
    """A cloned program plus per-function clone records."""

    program: Program
    functions: Dict[str, FunctionClone]


def clone_function(func: Function) -> FunctionClone:
    """Deep-copy ``func``: fresh blocks, instructions and registers."""
    new_func = Function(
        func.name,
        param_types=[p.vtype for p in func.params],
        return_type=func.return_type,
        param_names=[p.name or f"arg{i}" for i, p in enumerate(func.params)],
    )
    vreg_map: Dict[VReg, VReg] = dict(zip(func.params, new_func.params))

    def map_reg(reg: VReg) -> VReg:
        mapped = vreg_map.get(reg)
        if mapped is None:
            mapped = new_func.new_vreg(reg.vtype, reg.name)
            vreg_map[reg] = mapped
        return mapped

    block_map: Dict[BasicBlock, BasicBlock] = {}
    for block in func.blocks:
        new_block = BasicBlock(block.name)
        block_map[block] = new_block
        new_func.blocks.append(new_block)

    for block in func.blocks:
        new_block = block_map[block]
        for instr in block.instrs:
            new_block.instrs.append(_clone_instr(instr, map_reg, block_map))
    return FunctionClone(func=new_func, block_map=block_map, vreg_map=vreg_map)


def clone_program(program: Program) -> ProgramClone:
    """Deep-copy ``program`` (globals are shared declarations, immutable)."""
    new_program = Program(program.name)
    for array in program.globals.values():
        new_program.add_global(array)
    clones: Dict[str, FunctionClone] = {}
    for func in program.functions.values():
        record = clone_function(func)
        new_program.add_function(record.func)
        clones[func.name] = record
    return ProgramClone(program=new_program, functions=clones)


def _clone_call(instr: Call, map_reg, block_map) -> Call:
    dst = map_reg(instr.dst) if instr.dst is not None else None
    return Call(dst, instr.callee, [map_reg(a) for a in instr.args])


def _clone_ret(instr: Ret, map_reg, block_map) -> Ret:
    value = map_reg(instr.value) if instr.value is not None else None
    return Ret(value)


#: Per-type clone constructors; dispatching on ``type(instr)`` once
#: replaces the former isinstance chain in the per-instruction loop.
_CLONERS = {
    Const: lambda i, map_reg, block_map: Const(map_reg(i.dst), i.value),
    BinOp: lambda i, map_reg, block_map: BinOp(
        i.op, map_reg(i.dst), map_reg(i.lhs), map_reg(i.rhs)
    ),
    UnaryOp: lambda i, map_reg, block_map: UnaryOp(
        i.op, map_reg(i.dst), map_reg(i.src)
    ),
    Copy: lambda i, map_reg, block_map: Copy(map_reg(i.dst), map_reg(i.src)),
    Load: lambda i, map_reg, block_map: Load(
        map_reg(i.dst), i.array, map_reg(i.index)
    ),
    Store: lambda i, map_reg, block_map: Store(
        i.array, map_reg(i.index), map_reg(i.value)
    ),
    Call: _clone_call,
    Branch: lambda i, map_reg, block_map: Branch(
        map_reg(i.cond), block_map[i.then_block], block_map[i.else_block]
    ),
    Jump: lambda i, map_reg, block_map: Jump(block_map[i.target]),
    Ret: _clone_ret,
}


def _clone_instr(instr: Instr, map_reg, block_map) -> Instr:
    cloner = _CLONERS.get(type(instr))
    if cloner is None:
        # Exact-type lookup missed: accept subclasses of the known
        # instruction kinds before giving up.
        for kind, fallback in _CLONERS.items():
            if isinstance(instr, kind):
                return fallback(instr, map_reg, block_map)
        raise TypeError(f"cannot clone {instr!r}")
    return cloner(instr, map_reg, block_map)
