"""Instruction set of the repro IR.

The IR is a three-address, virtual-register code for a RISC-like
machine: all operands live in registers, memory is reached only through
``Load``/``Store`` on global arrays, and control flow is explicit
(``Branch``/``Jump``/``Ret`` terminate blocks).

Every instruction exposes a uniform interface used by the analyses and
the register allocator:

* ``uses()`` — virtual registers read by the instruction,
* ``defs()`` — virtual registers written by the instruction,
* ``replace_uses`` / ``replace_defs`` — operand rewriting (coalescing,
  spill-code insertion),
* ``is_terminator`` — whether the instruction ends a basic block.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.ir.values import VReg

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ir.function import BasicBlock


class BinaryOpcode(enum.Enum):
    """Arithmetic, logical and comparison operators."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    AND = "and"
    OR = "or"
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"

    @property
    def is_comparison(self) -> bool:
        return self in _COMPARISONS


_COMPARISONS = frozenset(
    {
        BinaryOpcode.EQ,
        BinaryOpcode.NE,
        BinaryOpcode.LT,
        BinaryOpcode.LE,
        BinaryOpcode.GT,
        BinaryOpcode.GE,
    }
)


class UnaryOpcode(enum.Enum):
    """Unary operators, including the two bank-crossing conversions."""

    NEG = "neg"
    NOT = "not"
    I2F = "i2f"
    F2I = "f2i"


class Instr:
    """Base class for all IR instructions."""

    __slots__ = ()

    is_terminator = False

    def uses(self) -> Tuple[VReg, ...]:
        return ()

    def defs(self) -> Tuple[VReg, ...]:
        return ()

    def replace_uses(self, mapping: Dict[VReg, VReg]) -> None:
        """Rewrite used registers according to ``mapping`` (in place)."""

    def replace_defs(self, mapping: Dict[VReg, VReg]) -> None:
        """Rewrite defined registers according to ``mapping`` (in place)."""


class Const(Instr):
    """``dst = value`` — materialize an immediate into a register."""

    __slots__ = ("dst", "value")

    def __init__(self, dst: VReg, value):
        self.dst = dst
        self.value = float(value) if dst.vtype.is_float else int(value)

    def defs(self) -> Tuple[VReg, ...]:
        return (self.dst,)

    def replace_defs(self, mapping: Dict[VReg, VReg]) -> None:
        self.dst = mapping.get(self.dst, self.dst)

    def __repr__(self) -> str:
        return f"{self.dst} = const {self.value}"


class BinOp(Instr):
    """``dst = lhs <op> rhs``.

    Comparison results are integers (0/1); all other operators require
    both operands and the destination to share one bank.
    """

    __slots__ = ("op", "dst", "lhs", "rhs")

    def __init__(self, op: BinaryOpcode, dst: VReg, lhs: VReg, rhs: VReg):
        self.op = op
        self.dst = dst
        self.lhs = lhs
        self.rhs = rhs

    def uses(self) -> Tuple[VReg, ...]:
        return (self.lhs, self.rhs)

    def defs(self) -> Tuple[VReg, ...]:
        return (self.dst,)

    def replace_uses(self, mapping: Dict[VReg, VReg]) -> None:
        self.lhs = mapping.get(self.lhs, self.lhs)
        self.rhs = mapping.get(self.rhs, self.rhs)

    def replace_defs(self, mapping: Dict[VReg, VReg]) -> None:
        self.dst = mapping.get(self.dst, self.dst)

    def __repr__(self) -> str:
        return f"{self.dst} = {self.op.value} {self.lhs}, {self.rhs}"


class UnaryOp(Instr):
    """``dst = <op> src``."""

    __slots__ = ("op", "dst", "src")

    def __init__(self, op: UnaryOpcode, dst: VReg, src: VReg):
        self.op = op
        self.dst = dst
        self.src = src

    def uses(self) -> Tuple[VReg, ...]:
        return (self.src,)

    def defs(self) -> Tuple[VReg, ...]:
        return (self.dst,)

    def replace_uses(self, mapping: Dict[VReg, VReg]) -> None:
        self.src = mapping.get(self.src, self.src)

    def replace_defs(self, mapping: Dict[VReg, VReg]) -> None:
        self.dst = mapping.get(self.dst, self.dst)

    def __repr__(self) -> str:
        return f"{self.dst} = {self.op.value} {self.src}"


class Copy(Instr):
    """``dst = src`` — the coalescer's prey."""

    __slots__ = ("dst", "src")

    def __init__(self, dst: VReg, src: VReg):
        if dst.vtype is not src.vtype:
            raise ValueError(f"copy between banks: {dst} = {src}")
        self.dst = dst
        self.src = src

    def uses(self) -> Tuple[VReg, ...]:
        return (self.src,)

    def defs(self) -> Tuple[VReg, ...]:
        return (self.dst,)

    def replace_uses(self, mapping: Dict[VReg, VReg]) -> None:
        self.src = mapping.get(self.src, self.src)

    def replace_defs(self, mapping: Dict[VReg, VReg]) -> None:
        self.dst = mapping.get(self.dst, self.dst)

    def __repr__(self) -> str:
        return f"{self.dst} = copy {self.src}"


class Load(Instr):
    """``dst = array[index]`` — read one element of a global array."""

    __slots__ = ("dst", "array", "index")

    def __init__(self, dst: VReg, array: str, index: VReg):
        self.dst = dst
        self.array = array
        self.index = index

    def uses(self) -> Tuple[VReg, ...]:
        return (self.index,)

    def defs(self) -> Tuple[VReg, ...]:
        return (self.dst,)

    def replace_uses(self, mapping: Dict[VReg, VReg]) -> None:
        self.index = mapping.get(self.index, self.index)

    def replace_defs(self, mapping: Dict[VReg, VReg]) -> None:
        self.dst = mapping.get(self.dst, self.dst)

    def __repr__(self) -> str:
        return f"{self.dst} = load @{self.array}[{self.index}]"


class Store(Instr):
    """``array[index] = value`` — write one element of a global array."""

    __slots__ = ("array", "index", "value")

    def __init__(self, array: str, index: VReg, value: VReg):
        self.array = array
        self.index = index
        self.value = value

    def uses(self) -> Tuple[VReg, ...]:
        return (self.index, self.value)

    def replace_uses(self, mapping: Dict[VReg, VReg]) -> None:
        self.index = mapping.get(self.index, self.index)
        self.value = mapping.get(self.value, self.value)

    def __repr__(self) -> str:
        return f"store @{self.array}[{self.index}] = {self.value}"


class Call(Instr):
    """``[dst =] call callee(args...)``.

    Calls are the raison d'etre of this reproduction: every live range
    crossing one may have to pay caller-save cost, and every function
    containing one pays callee-save cost for the callee-save registers
    it uses.
    """

    __slots__ = ("dst", "callee", "args")

    def __init__(self, dst: Optional[VReg], callee: str, args: List[VReg]):
        self.dst = dst
        self.callee = callee
        self.args = list(args)

    def uses(self) -> Tuple[VReg, ...]:
        return tuple(self.args)

    def defs(self) -> Tuple[VReg, ...]:
        return (self.dst,) if self.dst is not None else ()

    def replace_uses(self, mapping: Dict[VReg, VReg]) -> None:
        self.args = [mapping.get(a, a) for a in self.args]

    def replace_defs(self, mapping: Dict[VReg, VReg]) -> None:
        if self.dst is not None:
            self.dst = mapping.get(self.dst, self.dst)

    def __repr__(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        if self.dst is not None:
            return f"{self.dst} = call @{self.callee}({args})"
        return f"call @{self.callee}({args})"


class Branch(Instr):
    """``br cond, then, else`` — conditional two-way branch."""

    __slots__ = ("cond", "then_block", "else_block")

    is_terminator = True

    def __init__(self, cond: VReg, then_block: "BasicBlock", else_block: "BasicBlock"):
        self.cond = cond
        self.then_block = then_block
        self.else_block = else_block

    def uses(self) -> Tuple[VReg, ...]:
        return (self.cond,)

    def replace_uses(self, mapping: Dict[VReg, VReg]) -> None:
        self.cond = mapping.get(self.cond, self.cond)

    def successors(self) -> Tuple["BasicBlock", "BasicBlock"]:
        return (self.then_block, self.else_block)

    def __repr__(self) -> str:
        return f"br {self.cond}, {self.then_block.name}, {self.else_block.name}"


class Jump(Instr):
    """``jmp target`` — unconditional branch."""

    __slots__ = ("target",)

    is_terminator = True

    def __init__(self, target: "BasicBlock"):
        self.target = target

    def successors(self) -> Tuple["BasicBlock", ...]:
        return (self.target,)

    def __repr__(self) -> str:
        return f"jmp {self.target.name}"


class Ret(Instr):
    """``ret [value]`` — return from the current function."""

    __slots__ = ("value",)

    is_terminator = True

    def __init__(self, value: Optional[VReg] = None):
        self.value = value

    def uses(self) -> Tuple[VReg, ...]:
        return (self.value,) if self.value is not None else ()

    def replace_uses(self, mapping: Dict[VReg, VReg]) -> None:
        if self.value is not None:
            self.value = mapping.get(self.value, self.value)

    def successors(self) -> Tuple["BasicBlock", ...]:
        return ()

    def __repr__(self) -> str:
        return f"ret {self.value}" if self.value is not None else "ret"
