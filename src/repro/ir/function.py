"""Basic blocks, functions and programs.

A ``Function`` owns an ordered list of ``BasicBlock``s whose first
element is the entry block.  Virtual registers are allocated through
the function (``new_vreg``) so their ids are unique within it.  A
``Program`` is a set of functions plus the global arrays they share.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.ir.instructions import Branch, Instr, Jump, Ret
from repro.ir.types import ValueType
from repro.ir.values import GlobalArray, VReg


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    __slots__ = ("name", "instrs")

    def __init__(self, name: str):
        self.name = name
        self.instrs: List[Instr] = []

    @property
    def terminator(self) -> Optional[Instr]:
        """The block's final instruction, if it is a terminator."""
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[-1]
        return None

    def successors(self) -> Tuple["BasicBlock", ...]:
        term = self.terminator
        if term is None:
            return ()
        if isinstance(term, (Branch, Jump, Ret)):
            return term.successors()
        return ()

    def append(self, instr: Instr) -> Instr:
        if self.terminator is not None:
            raise ValueError(f"appending past terminator in block {self.name}")
        self.instrs.append(instr)
        return instr

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)

    def __repr__(self) -> str:
        return f"<block {self.name}, {len(self.instrs)} instrs>"


class Function:
    """An IR function: parameters, blocks and a virtual-register pool."""

    def __init__(
        self,
        name: str,
        param_types: Iterable[ValueType] = (),
        return_type: Optional[ValueType] = None,
        param_names: Optional[List[str]] = None,
    ):
        self.name = name
        self.return_type = return_type
        self._next_vreg = 0
        types = list(param_types)
        names = param_names or [f"arg{i}" for i in range(len(types))]
        if len(names) != len(types):
            raise ValueError(f"{name}: {len(names)} names for {len(types)} params")
        self.params: List[VReg] = [
            self.new_vreg(t, names[i]) for i, t in enumerate(types)
        ]
        self.blocks: List[BasicBlock] = []
        self._next_block = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def new_vreg(self, vtype: ValueType, name: Optional[str] = None) -> VReg:
        """Allocate a fresh virtual register of the given type."""
        reg = VReg(self._next_vreg, vtype, name)
        self._next_vreg += 1
        return reg

    def new_block(self, hint: str = "bb") -> BasicBlock:
        """Create a new basic block and append it to the function."""
        block = BasicBlock(f"{hint}{self._next_block}")
        self._next_block += 1
        self.blocks.append(block)
        return block

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def predecessors(self) -> Dict[BasicBlock, List[BasicBlock]]:
        """Map each block to the list of its CFG predecessors."""
        preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                preds[succ].append(block)
        return preds

    def instructions(self) -> Iterator[Instr]:
        """Iterate over every instruction in block order."""
        for block in self.blocks:
            yield from block.instrs

    def vregs(self) -> List[VReg]:
        """All virtual registers referenced anywhere in the function."""
        seen: Dict[VReg, None] = {}
        for param in self.params:
            seen.setdefault(param)
        for instr in self.instructions():
            for reg in instr.defs():
                seen.setdefault(reg)
            for reg in instr.uses():
                seen.setdefault(reg)
        return list(seen)

    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks ending in ``Ret``."""
        return [b for b in self.blocks if isinstance(b.terminator, Ret)]

    def size(self) -> int:
        """Total instruction count."""
        return sum(len(b) for b in self.blocks)

    def __repr__(self) -> str:
        return f"<function {self.name}, {len(self.blocks)} blocks>"


class Program:
    """A whole compilation unit: functions plus global arrays."""

    def __init__(self, name: str = "program"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalArray] = {}

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func
        return func

    def add_global(self, array: GlobalArray) -> GlobalArray:
        if array.name in self.globals:
            raise ValueError(f"duplicate global {array.name!r}")
        self.globals[array.name] = array
        return array

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"no function named {name!r} in {self.name}") from None

    def __repr__(self) -> str:
        return (
            f"<program {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )
