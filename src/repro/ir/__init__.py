"""The repro IR: a three-address, virtual-register RISC-like code.

Public surface:

* :class:`ValueType` (with :data:`INT` / :data:`FLOAT` shorthands)
* :class:`VReg`, :class:`GlobalArray`
* instruction classes (:class:`Const`, :class:`BinOp`, ...)
* :class:`BasicBlock`, :class:`Function`, :class:`Program`
* :class:`IRBuilder` for construction
* :func:`format_function` / :func:`format_program` for debugging
* :func:`verify_function` / :func:`verify_program` for invariants
"""

from repro.ir.builder import IRBuilder
from repro.ir.clone import FunctionClone, ProgramClone, clone_function, clone_program
from repro.ir.function import BasicBlock, Function, Program
from repro.ir.instructions import (
    BinaryOpcode,
    BinOp,
    Branch,
    Call,
    Const,
    Copy,
    Instr,
    Jump,
    Load,
    Ret,
    Store,
    UnaryOp,
    UnaryOpcode,
)
from repro.ir.printer import format_block, format_function, format_global, format_program
from repro.ir.textparse import IRParseError, parse_ir
from repro.ir.types import FLOAT, INT, ValueType
from repro.ir.values import GlobalArray, VReg
from repro.ir.verify import IRVerificationError, verify_function, verify_program

__all__ = [
    "BasicBlock",
    "FunctionClone",
    "ProgramClone",
    "clone_function",
    "clone_program",
    "BinaryOpcode",
    "BinOp",
    "Branch",
    "Call",
    "Const",
    "Copy",
    "FLOAT",
    "Function",
    "GlobalArray",
    "INT",
    "IRBuilder",
    "IRVerificationError",
    "Instr",
    "Jump",
    "Load",
    "Program",
    "Ret",
    "Store",
    "UnaryOp",
    "UnaryOpcode",
    "ValueType",
    "VReg",
    "IRParseError",
    "format_block",
    "format_function",
    "format_global",
    "format_program",
    "parse_ir",
    "verify_function",
    "verify_program",
]
