"""Tests for the pass-manager style AnalysisCache."""

import gc

from repro.analysis import (
    CALL_GRAPH,
    INSTRUCTION_KEYS,
    KEY_CFG,
    LIVENESS,
    LOOP_DEPTHS,
    RPO,
    STATIC_WEIGHTS,
    AnalysisCache,
    compute_liveness,
    static_weights,
)
from repro.lang import compile_source

SOURCE = """
int out[2];
int helper(int x) { return x * 2 + 1; }
void main() {
    int total = 0;
    for (int i = 0; i < 8; i = i + 1) {
        total = total + helper(i);
    }
    out[0] = total;
}
"""


def _program():
    return compile_source(SOURCE)


class TestLookups:
    def test_get_memoizes(self):
        program = _program()
        func = program.functions["main"]
        cache = AnalysisCache()
        first = cache.get(func, LIVENESS)
        second = cache.get(func, LIVENESS)
        assert first is second
        assert cache.stats.hits == 1
        # liveness computes through RPO, so two analyses were computed.
        assert cache.stats.misses == 2

    def test_results_match_direct_computation(self):
        program = _program()
        func = program.functions["main"]
        cache = AnalysisCache()
        cached = cache.get(func, LIVENESS)
        direct = compute_liveness(func)
        assert cached.live_in == direct.live_in
        assert cached.live_out == direct.live_out
        assert cache.get(func, STATIC_WEIGHTS).weights == static_weights(func).weights

    def test_program_analysis(self):
        program = _program()
        cache = AnalysisCache()
        graph = cache.get_program(program, CALL_GRAPH)
        assert cache.get_program(program, CALL_GRAPH) is graph
        assert "helper" in graph.callees["main"]

    def test_functions_tracked_independently(self):
        program = _program()
        cache = AnalysisCache()
        main = cache.get(program.functions["main"], RPO)
        helper = cache.get(program.functions["helper"], RPO)
        assert main is not helper


class TestInvalidation:
    def test_instruction_invalidation_preserves_cfg_analyses(self):
        program = _program()
        func = program.functions["main"]
        cache = AnalysisCache()
        liveness = cache.get(func, LIVENESS)
        rpo = cache.get(func, RPO)
        depths = cache.get(func, LOOP_DEPTHS)
        cache.invalidate(func, INSTRUCTION_KEYS)
        assert cache.get(func, RPO) is rpo
        assert cache.get(func, LOOP_DEPTHS) is depths
        assert cache.get(func, LIVENESS) is not liveness

    def test_cfg_invalidation_drops_everything(self):
        program = _program()
        func = program.functions["main"]
        cache = AnalysisCache()
        rpo = cache.get(func, RPO)
        cache.invalidate(func, {KEY_CFG})
        assert cache.get(func, RPO) is not rpo

    def test_full_invalidation_by_default(self):
        program = _program()
        func = program.functions["main"]
        cache = AnalysisCache()
        weights = cache.get(func, STATIC_WEIGHTS)
        cache.invalidate(func)
        assert cache.get(func, STATIC_WEIGHTS) is not weights

    def test_clear(self):
        program = _program()
        func = program.functions["main"]
        cache = AnalysisCache()
        cache.get(func, RPO)
        cache.clear()
        assert cache.cached_analyses(func) == frozenset()

    def test_cached_analyses_listing(self):
        program = _program()
        func = program.functions["main"]
        cache = AnalysisCache()
        cache.get(func, LIVENESS)
        names = cache.cached_analyses(func)
        assert "liveness" in names and "rpo" in names


class TestLifetime:
    def test_entries_die_with_their_function(self):
        cache = AnalysisCache()
        program = _program()
        cache.get(program.functions["main"], RPO)
        assert len(cache._functions) == 1
        del program
        gc.collect()
        assert len(cache._functions) == 0
