"""Unit tests for call-graph construction and SCCs."""

from repro.analysis.callgraph import build_call_graph
from repro.lang import compile_source


def graph_for(source: str):
    return build_call_graph(compile_source(source))


class TestCallGraph:
    def test_simple_chain(self):
        graph = graph_for(
            """
            int leaf(int x) { return x; }
            int mid(int x) { return leaf(x) + 1; }
            void main() { int v = mid(3); }
            """
        )
        assert graph.callees["main"] == {"mid"}
        assert graph.callees["mid"] == {"leaf"}
        assert graph.callers["leaf"] == {"mid"}
        assert not graph.is_recursive("leaf")

    def test_bottom_up_order(self):
        graph = graph_for(
            """
            int leaf(int x) { return x; }
            int mid(int x) { return leaf(x) + 1; }
            void main() { int v = mid(3); }
            """
        )
        order = graph.bottom_up()
        assert order.index("leaf") < order.index("mid") < order.index("main")

    def test_self_recursion_detected(self):
        graph = graph_for(
            """
            int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
            void main() { int v = fact(5); }
            """
        )
        assert graph.is_recursive("fact")
        assert not graph.is_recursive("main")

    def test_mutual_recursion_one_scc(self):
        graph = graph_for(
            """
            int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
            int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }
            void main() { int v = even(4); }
            """
        )
        assert graph.is_recursive("even")
        assert graph.is_recursive("odd")
        scc = next(s for s in graph.sccs if "even" in s)
        assert set(scc) == {"even", "odd"}
        order = graph.bottom_up()
        assert order.index("even") < order.index("main")

    def test_uncalled_function_present(self):
        graph = graph_for(
            """
            int orphan(int x) { return x; }
            void main() { }
            """
        )
        assert "orphan" in graph.callees
        assert graph.callers["orphan"] == set()

    def test_diamond_counts_each_edge_once(self):
        graph = graph_for(
            """
            int leaf(int x) { return x; }
            int a(int x) { return leaf(x); }
            int b(int x) { return leaf(x) + leaf(x); }
            void main() { int v = a(1) + b(2); }
            """
        )
        assert graph.callees["b"] == {"leaf"}
        assert graph.callers["leaf"] == {"a", "b"}
        order = graph.bottom_up()
        assert order.index("leaf") < min(order.index("a"), order.index("b"))
