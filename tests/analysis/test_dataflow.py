"""Unit tests for liveness, reaching definitions and static frequency."""

from repro.analysis import (
    LOOP_MULTIPLIER,
    compute_liveness,
    compute_reaching_defs,
    static_weights,
)
from repro.ir import INT, BinaryOpcode, Copy, Function, IRBuilder
from repro.lang import compile_source


def straightline_func():
    """r = (p + 1) * p; dead = 7; return r."""
    func = Function("f", param_types=[INT], return_type=INT)
    builder = IRBuilder(func)
    builder.start_block("entry")
    one = builder.const(1, INT, name="one")
    t = builder.binop(BinaryOpcode.ADD, func.params[0], one, name="t")
    r = builder.binop(BinaryOpcode.MUL, t, func.params[0], name="r")
    dead = builder.const(7, INT, name="dead")
    builder.ret(r)
    return func, one, t, r, dead


class TestLiveness:
    def test_single_block_live_sets(self):
        func, one, t, r, dead = straightline_func()
        info = compute_liveness(func)
        entry = func.entry
        assert info.live_in[entry] == frozenset({func.params[0]})
        assert info.live_out[entry] == frozenset()

    def test_live_across_walk(self):
        func, one, t, r, dead = straightline_func()
        info = compute_liveness(func)
        walk = list(info.live_across(func.entry))
        # Walk is backwards: first yield is the Ret.
        ret_instr, live_after_ret = walk[0]
        assert live_after_ret == set()
        # After the dead const, r is live (used by ret).
        dead_instr, live_after_dead = walk[1]
        assert r in live_after_dead
        assert dead not in live_after_dead

    def test_loop_keeps_values_live(self):
        program = compile_source(
            """
            void main() {
                int acc = 0;
                for (int i = 0; i < 10; i = i + 1) {
                    acc = acc + i;
                }
                int sink = acc;
            }
            """
        )
        func = program.function("main")
        info = compute_liveness(func)
        # acc's register must be live into the loop header.
        header = next(b for b in func.blocks if b.name.startswith("for_head"))
        live_names = {reg.name for reg in info.live_in[header]}
        assert "acc" in live_names
        assert "i" in live_names

    def test_branch_merges_liveness(self):
        program = compile_source(
            """
            void main() {
                int a = 1;
                int b = 2;
                int r = 0;
                if (a < b) { r = a; } else { r = b; }
                int sink = r;
            }
            """
        )
        func = program.function("main")
        info = compute_liveness(func)
        entry = func.entry
        names = {reg.name for reg in info.live_out[entry]}
        assert {"a", "b"} <= names


class TestReachingDefs:
    def test_param_pseudo_site(self):
        func, *_ = straightline_func()
        reaching = compute_reaching_defs(func)
        param = func.params[0]
        sites = reaching.def_sites[param]
        assert sites[0] == (func.entry, -1)

    def test_redefinition_kills(self):
        program = compile_source(
            """
            void main() {
                int x = 1;
                int a = x;
                x = 2;
                int b = x;
            }
            """
        )
        func = program.function("main")
        reaching = compute_reaching_defs(func)
        # Find the uses of the register named x; each use must see
        # exactly one def (straight-line code).
        for (site, reg), defs in reaching.use_chains.items():
            if reg.name == "x":
                assert len(defs) == 1

    def test_merge_point_sees_both_defs(self):
        program = compile_source(
            """
            void main() {
                int x = 0;
                if (1) { x = 1; } else { x = 2; }
                int sink = x;
            }
            """
        )
        func = program.function("main")
        reaching = compute_reaching_defs(func)
        multi = [
            defs
            for (site, reg), defs in reaching.use_chains.items()
            if reg.name == "x" and len(defs) > 1
        ]
        assert multi, "the post-if use of x must see both branch defs"


class TestStaticFrequency:
    def test_entry_weight_is_one(self):
        program = compile_source("void main() { int x = 1; }")
        weights = static_weights(program.function("main"))
        assert weights.entry_weight == 1.0
        assert weights.weight(program.function("main").entry) == 1.0

    def test_loop_multiplier(self):
        program = compile_source(
            """
            void main() {
                for (int i = 0; i < 3; i = i + 1) {
                    for (int j = 0; j < 3; j = j + 1) {
                        int x = 1;
                    }
                }
            }
            """
        )
        func = program.function("main")
        weights = static_weights(func)
        values = sorted(set(weights.weights.values()))
        assert values[0] == 1.0
        assert LOOP_MULTIPLIER in values
        assert LOOP_MULTIPLIER**2 in values

    def test_unreachable_block_weight_zero(self):
        program = compile_source("void main() { int x = 1; }")
        func = program.function("main")
        orphan = func.new_block("orphan")
        weights = static_weights(func)
        assert weights.weight(orphan) == 0.0
