"""Differential equivalence of the bitset kernels vs the set oracles.

The dense-bitset liveness kernel (``repro.analysis.bitset``) and the
mask-based interference walk must be observationally identical to the
original set-of-objects implementations.  ``compute_liveness_sets`` is
kept in the tree verbatim as the liveness oracle; the interference
oracle is re-derived here as the textbook backward walk over explicit
sets.  Both are compared against the production kernels over every
registry workload and a corpus of generated fuzz programs, and the
final allocations are checked for determinism (two independent runs
produce bit-identical output) and validity (the PR 2 verifier).
"""

from __future__ import annotations

import pytest

from repro.analysis.liveness import compute_liveness, compute_liveness_sets
from repro.fuzz.harness import config_for_seed
from repro.ir.clone import clone_program
from repro.ir.instructions import Copy
from repro.lang import compile_source
from repro.machine.mips import register_file
from repro.machine.registers import RegisterConfig
from repro.regalloc import (
    PRESETS,
    allocate_program,
    build_interference,
    build_webs,
    verify_allocation,
)
from repro.analysis.frequency import static_weights
from repro.workloads import get_workload, workload_names
from repro.workloads.generator import random_source

#: Deterministic fuzz corpus: same generator the fuzz harness drives.
FUZZ_SEEDS = tuple(range(24))

WORKLOADS = workload_names()
ALLOCATORS = sorted(PRESETS)


def _compile_workload(name):
    return compile_source(get_workload(name).source, name=name)


def _compile_seed(seed):
    return compile_source(random_source(seed), name=f"rand{seed}")


# ----------------------------------------------------------------------
# Liveness: bitset fixed point vs the set-of-objects oracle.


def _assert_liveness_equivalent(func):
    info = compute_liveness(func)
    ref_in, ref_out = compute_liveness_sets(func)
    assert info.live_in == ref_in, f"live-in mismatch in {func.name}"
    assert info.live_out == ref_out, f"live-out mismatch in {func.name}"


@pytest.mark.parametrize("name", WORKLOADS)
def test_liveness_matches_oracle_on_workload(name):
    program = _compile_workload(name)
    for func in program.functions.values():
        _assert_liveness_equivalent(func)


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_liveness_matches_oracle_on_fuzz_program(seed):
    program = _compile_seed(seed)
    for func in program.functions.values():
        _assert_liveness_equivalent(func)


# ----------------------------------------------------------------------
# Interference: mask walk vs an explicit-set reference builder.


def _reference_edges(func):
    """The interference edge set by the original set-based definition.

    Parameters all interfere pairwise and with everything live into
    the entry block; each definition interferes with everything live
    after the defining instruction except itself and, for a ``Copy``,
    the copy source.  Only same-bank pairs interfere.
    """
    live_in, live_out = compute_liveness_sets(func)
    edges = set()

    def connect(a, b):
        if a is not b and a.vtype is b.vtype:
            edges.add(frozenset((a, b)))

    for param in func.params:
        for other in func.params:
            connect(param, other)
        for other in live_in[func.entry]:
            connect(param, other)

    for block in func.blocks:
        live = set(live_out[block])
        for instr in reversed(block.instrs):
            defs = instr.defs()
            copy_src = instr.src if isinstance(instr, Copy) else None
            for dst in defs:
                for other in live:
                    if other is copy_src:
                        continue
                    connect(dst, other)
            live.difference_update(defs)
            live.update(instr.uses())
    return edges


def _graph_edges(graph):
    edges = set()
    for reg in graph.nodes:
        for other in graph.neighbors(reg):
            edges.add(frozenset((reg, other)))
    return edges


def _assert_interference_equivalent(func):
    # Mirror the pipeline: interference is always built on webs.
    build_webs(func)
    graph, _ = build_interference(func, static_weights(func), set())
    assert _graph_edges(graph) == _reference_edges(
        func
    ), f"edge-set mismatch in {func.name}"


@pytest.mark.parametrize("name", WORKLOADS)
def test_interference_matches_reference_on_workload(name):
    # build_webs rewrites the function, so work on a private clone.
    program = clone_program(_compile_workload(name)).program
    for func in program.functions.values():
        _assert_interference_equivalent(func)


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_interference_matches_reference_on_fuzz_program(seed):
    program = clone_program(_compile_seed(seed)).program
    for func in program.functions.values():
        _assert_interference_equivalent(func)


# ----------------------------------------------------------------------
# End to end: every preset produces a valid, deterministic allocation.


def _signature(allocation):
    """Everything observable about an allocation, rendered to strings.

    ``allocate_program`` clones its input, so VReg objects differ
    between runs; reprs (stable per-function ids and names) and block
    order capture the result bit for bit.
    """
    sig = {}
    for name, fa in allocation.functions.items():
        blocks = [
            (block.name, [repr(instr) for instr in block.instrs])
            for block in fa.func.blocks
        ]
        assignment = sorted(
            (repr(reg), phys.name) for reg, phys in fa.assignment.items()
        )
        spilled = sorted(repr(reg) for reg in fa.spilled)
        sig[name] = (blocks, assignment, spilled, fa.frame_slots, fa.iterations)
    return sig


def _assert_allocation_stable(program, config: RegisterConfig, label: str):
    options = PRESETS[label]()
    regfile = register_file(config)
    first = allocate_program(program, regfile, options)
    verify_allocation(first)
    second = allocate_program(program, regfile, options)
    assert _signature(first) == _signature(second)


@pytest.mark.parametrize("label", ALLOCATORS)
def test_fuzz_allocations_verified_and_deterministic(label):
    for seed in FUZZ_SEEDS[::3]:
        program = _compile_seed(seed)
        _assert_allocation_stable(program, config_for_seed(seed), label)


@pytest.mark.parametrize("label", ALLOCATORS)
def test_workload_allocation_verified_and_deterministic(label):
    program = _compile_workload("compress")
    _assert_allocation_stable(program, RegisterConfig(8, 6, 2, 2), label)
