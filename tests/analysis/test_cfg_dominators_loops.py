"""Unit tests for CFG utilities, dominators and loop discovery."""

from repro.analysis import (
    dominates,
    find_loops,
    immediate_dominators,
    loop_depths,
    reachable_blocks,
    remove_unreachable,
    reverse_postorder,
    rpo_index,
)
from repro.ir import INT, BinaryOpcode, Function, IRBuilder
from repro.lang import compile_source


def diamond_function():
    func = Function("diamond", param_types=[INT], return_type=INT)
    builder = IRBuilder(func)
    entry = builder.start_block("entry")
    then_b = builder.new_block("then")
    else_b = builder.new_block("else")
    join = builder.new_block("join")
    zero = builder.const(0, INT)
    cond = builder.binop(BinaryOpcode.GT, func.params[0], zero)
    builder.branch(cond, then_b, else_b)
    builder.set_block(then_b)
    builder.jump(join)
    builder.set_block(else_b)
    builder.jump(join)
    builder.set_block(join)
    builder.ret(func.params[0])
    return func, entry, then_b, else_b, join


def loop_function():
    """entry -> head -> body -> head, head -> exit."""
    func = Function("loopy", param_types=[INT], return_type=None)
    builder = IRBuilder(func)
    entry = builder.start_block("entry")
    head = builder.new_block("head")
    body = builder.new_block("body")
    exit_b = builder.new_block("exit")
    builder.jump(head)
    builder.set_block(head)
    zero = builder.const(0, INT)
    cond = builder.binop(BinaryOpcode.GT, func.params[0], zero)
    builder.branch(cond, body, exit_b)
    builder.set_block(body)
    builder.jump(head)
    builder.set_block(exit_b)
    builder.ret()
    return func, entry, head, body, exit_b


class TestCFG:
    def test_rpo_starts_at_entry(self):
        func, entry, *_ = diamond_function()
        order = reverse_postorder(func)
        assert order[0] is entry
        assert len(order) == 4

    def test_rpo_respects_dominance_in_diamond(self):
        func, entry, then_b, else_b, join = diamond_function()
        index = rpo_index(func)
        assert index[entry] < index[then_b]
        assert index[entry] < index[else_b]
        assert index[join] > index[then_b]
        assert index[join] > index[else_b]

    def test_unreachable_excluded(self):
        func, *_ = diamond_function()
        orphan = func.new_block("orphan")
        from repro.ir import Ret

        orphan.instrs.append(Ret(func.params[0]))
        assert orphan not in reachable_blocks(func)
        removed = remove_unreachable(func)
        assert removed == 1
        assert orphan not in func.blocks


class TestDominators:
    def test_diamond_idoms(self):
        func, entry, then_b, else_b, join = diamond_function()
        idom = immediate_dominators(func)
        assert idom[entry] is None
        assert idom[then_b] is entry
        assert idom[else_b] is entry
        assert idom[join] is entry  # neither branch dominates the join

    def test_dominates_relation(self):
        func, entry, then_b, else_b, join = diamond_function()
        idom = immediate_dominators(func)
        assert dominates(idom, entry, join)
        assert dominates(idom, join, join)
        assert not dominates(idom, then_b, join)

    def test_loop_idoms(self):
        func, entry, head, body, exit_b = loop_function()
        idom = immediate_dominators(func)
        assert idom[head] is entry
        assert idom[body] is head
        assert idom[exit_b] is head


class TestLoops:
    def test_single_loop_found(self):
        func, entry, head, body, exit_b = loop_function()
        loops = find_loops(func)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header is head
        assert loop.blocks == {head, body}

    def test_depths(self):
        func, entry, head, body, exit_b = loop_function()
        depths = loop_depths(func)
        assert depths[entry] == 0
        assert depths[head] == 1
        assert depths[body] == 1
        assert depths[exit_b] == 0

    def test_nested_loops_from_source(self):
        program = compile_source(
            """
            void main() {
                for (int i = 0; i < 3; i = i + 1) {
                    for (int j = 0; j < 3; j = j + 1) {
                        int x = i * j;
                    }
                }
            }
            """
        )
        func = program.function("main")
        depths = loop_depths(func)
        assert max(depths.values()) == 2
        assert min(depths.values()) == 0
        loops = find_loops(func)
        assert len(loops) == 2

    def test_while_loop_depth(self):
        program = compile_source(
            "void main() { int i = 0; while (i < 4) { i = i + 1; } }"
        )
        depths = loop_depths(program.function("main"))
        assert sorted(set(depths.values())) == [0, 1]
