"""GridReport JSON round-trips and the cross-call retry semantics.

The campaign journal persists grid outcomes as JSON and rebuilds them
in a later process, so ``as_dict``/``from_dict`` must be lossless for
every point category — computed, cached, failed, interrupted — and
``run_grid(skip_failures=..., retry_interrupted=...)`` must let a
resume distinguish points an earlier death merely cut off from points
that genuinely failed.
"""

import json

from repro.eval import (
    FailureRecord,
    GridReport,
    ResultCache,
    key_as_dict,
    key_from_dict,
    run_grid,
)
from repro.eval import runner
from repro.machine import RegisterConfig
from repro.regalloc import AllocatorOptions

CFG = RegisterConfig(6, 4, 2, 2)
K1 = ("compress", AllocatorOptions.base_chaitin(), CFG, "dynamic")
K2 = (
    "li",
    AllocatorOptions.improved_chaitin(),
    RegisterConfig(4, 2, 2, 2),
    "static",
)
K3 = ("eqntott", AllocatorOptions.priority_based(), CFG, "dynamic")


def test_key_round_trip_preserves_every_field():
    for key in (K1, K2, K3):
        data = key_as_dict(key)
        # Must survive a real JSON hop, not just the dict conversion.
        assert key_from_dict(json.loads(json.dumps(data))) == key


def test_grid_report_round_trip_all_categories():
    report = GridReport(
        computed=[K1],
        cached=[K2],
        failed=[
            FailureRecord(key=K3, error="injected failure", attempts=3),
            FailureRecord(key=K2, error="interrupted", attempts=1),
        ],
        interrupted=True,
    )
    hopped = GridReport.from_dict(json.loads(json.dumps(report.as_dict())))
    assert hopped.computed == report.computed
    assert hopped.cached == report.cached
    assert hopped.failed == report.failed
    assert hopped.interrupted is True
    # Reconstructed records keep their semantics, not just their data.
    assert not hopped.failed[0].interrupted
    assert hopped.failed[1].interrupted
    assert hopped.total == report.total
    assert not hopped.ok


def test_empty_report_round_trip():
    hopped = GridReport.from_dict(
        json.loads(json.dumps(GridReport().as_dict()))
    )
    assert hopped.ok and hopped.total == 0 and not hopped.interrupted


def test_skip_failures_copied_without_recomputation(monkeypatch):
    def _explode(*args, **kwargs):
        raise AssertionError("skip_failures must not recompute")

    monkeypatch.setattr(runner, "_measure_chunk", _explode)
    cache = ResultCache()
    prior = FailureRecord(key=K1, error="genuine failure", attempts=4)
    report = run_grid([K1], jobs=1, cache=cache, skip_failures=[prior])
    # The record rode through verbatim — attempts preserved, nothing run.
    assert report.failed == [prior]
    assert not report.computed and not report.cached


def test_retry_interrupted_distinguishes_cut_off_from_broken():
    cache = ResultCache()
    prior = [
        FailureRecord(key=K1, error="interrupted", attempts=1),
        FailureRecord(key=K3, error="genuine failure", attempts=4),
    ]
    report = run_grid(
        [K1, K3],
        jobs=1,
        cache=cache,
        skip_failures=prior,
        retry_interrupted=True,
    )
    # The interrupted point got a fresh try and computed fine...
    assert report.computed == [K1]
    assert K1 in cache
    # ...while the genuinely failed one stayed failed, untouched.
    assert report.failed == [prior[1]]


def test_without_switch_interrupted_records_stay_skipped(monkeypatch):
    def _explode(*args, **kwargs):
        raise AssertionError("must not recompute without retry_interrupted")

    monkeypatch.setattr(runner, "_measure_chunk", _explode)
    cache = ResultCache()
    prior = FailureRecord(key=K1, error="interrupted", attempts=1)
    report = run_grid([K1], jobs=1, cache=cache, skip_failures=[prior])
    assert report.failed == [prior]
    assert not report.computed


def test_on_point_sees_every_newly_computed_point():
    cache = ResultCache()
    seen = []
    report = run_grid(
        [K1, K2], jobs=1, cache=cache,
        on_point=lambda key, measurement: seen.append(
            (key, measurement.cycles)
        ),
    )
    assert [key for key, _ in seen] == report.computed
    assert all(cycles > 0 for _, cycles in seen)
    # Cached points do not re-fire the hook.
    seen.clear()
    again = run_grid([K1, K2], jobs=1, cache=cache, on_point=lambda *a: seen.append(a))
    assert again.cached and not seen
