"""Resilient measurement: grid threading, counters and rendering."""

from repro.eval.render import degraded_cell
from repro.eval.report import render_sweep, sweep_report
from repro.eval.runner import (
    GridReport,
    Measurement,
    ResultCache,
    compute_measurement,
    run_grid,
)
from repro.machine.mips import MIN_CONFIG
from repro.obs.metrics import METRICS
from repro.regalloc.options import PRESETS


def degraded_report_dict(rung="spillall", rung_index=2):
    return {
        "requested": "chaitin+SC",
        "rung": rung,
        "rung_index": rung_index,
        "options": rung,
        "attempts": rung_index + 1,
        "degraded": rung_index > 0,
        "demotions": [
            {
                "rung": "primary",
                "error_type": "ChaosFault",
                "error": "injected",
                "check": None,
                "detail": None,
                "stats": None,
            }
        ]
        * rung_index,
    }


class TestComputeMeasurement:
    def test_resilient_measurement_carries_report(self):
        measurement = compute_measurement(
            "li", PRESETS["improved"](), MIN_CONFIG, resilient=True
        )
        assert measurement.resilience is not None
        assert measurement.resilience["rung"] == "primary"
        assert measurement.resilience["degraded"] is False

    def test_plain_measurement_has_no_report(self):
        measurement = compute_measurement("li", PRESETS["improved"](), MIN_CONFIG)
        assert measurement.resilience is None

    def test_resilient_matches_plain_numbers(self):
        plain = compute_measurement("li", PRESETS["improved"](), MIN_CONFIG)
        resilient = compute_measurement(
            "li", PRESETS["improved"](), MIN_CONFIG, resilient=True
        )
        assert resilient.overhead.total == plain.overhead.total
        assert resilient.cycles == plain.cycles


class TestResilientGrid:
    def test_serial_grid_threads_resilient(self):
        cache = ResultCache()
        keys = [("li", PRESETS["improved"](), MIN_CONFIG, "dynamic")]
        report = run_grid(keys, cache=cache, resilient=True)
        assert report.ok
        measurement = cache.peek(keys[0])
        assert measurement.resilience is not None

    def test_absorb_counts_fallbacks(self):
        from repro.eval.runner import _absorb_report

        cache = ResultCache()
        key = ("li", PRESETS["improved"](), MIN_CONFIG, "dynamic")
        base = compute_measurement(*key[:3], key[3])
        cache.put(
            key,
            Measurement(
                overhead=base.overhead,
                cycles=base.cycles,
                stats=base.stats,
                resilience=degraded_report_dict(rung_index=2),
            ),
        )
        grid = GridReport(computed=[key])
        before = dict(METRICS.as_dict()["counters"])
        _absorb_report(grid, cache)
        after = METRICS.as_dict()["counters"]
        assert after["grid.fallback_runs"] == before.get("grid.fallback_runs", 0) + 1
        assert (
            after["grid.fallback_demotions"]
            == before.get("grid.fallback_demotions", 0) + 2
        )
        assert (
            after["resilience.rung.spillall"]
            == before.get("resilience.rung.spillall", 0) + 1
        )


class TestRendering:
    def test_degraded_cell_format(self):
        assert degraded_cell(1234.0, "spillall") == "deg[spillall] 1234"

    def test_render_sweep_marks_degraded_cells(self):
        grid = GridReport()
        report = sweep_report(
            "li",
            "dynamic",
            ["improved"],
            ["(6,4,0,0)", "(7,5,1,1)"],
            {"improved": {"(6,4,0,0)": 500.0, "(7,5,1,1)": 400.0}},
            grid,
            resilience={
                "improved": {
                    "(6,4,0,0)": degraded_report_dict(),
                    "(7,5,1,1)": None,
                }
            },
        )
        rendered = render_sweep(report)
        assert "deg[spillall] 500" in rendered
        assert "400" in rendered
        assert "deg" not in rendered.split("400")[1]

    def test_render_sweep_keeps_err_cells(self):
        grid = GridReport()
        report = sweep_report(
            "li",
            "dynamic",
            ["improved"],
            ["(6,4,0,0)"],
            {"improved": {"(6,4,0,0)": None}},
            grid,
            resilience={"improved": {"(6,4,0,0)": None}},
        )
        assert "ERR" in render_sweep(report)

    def test_json_report_carries_full_resilience(self):
        from repro.eval.report import dump_json
        import json

        grid = GridReport()
        report = sweep_report(
            "li",
            "dynamic",
            ["improved"],
            ["(6,4,0,0)"],
            {"improved": {"(6,4,0,0)": 500.0}},
            grid,
            resilience={"improved": {"(6,4,0,0)": degraded_report_dict()}},
        )
        data = json.loads(dump_json(report))
        cell = data["resilience"]["improved"]["(6,4,0,0)"]
        assert cell["rung"] == "spillall"
        assert cell["demotions"][0]["error_type"] == "ChaosFault"
