"""``run_grid`` under KeyboardInterrupt: clean shutdown, partial report.

The server's graceful-shutdown path (and plain Ctrl-C at a terminal)
interrupts sweeps mid-chunk.  ``run_grid`` must come back with a
partial :class:`GridReport` — computed points cached, unfinished ones
recorded as ``interrupted`` failures — instead of propagating the
interrupt, hanging on its pool, or leaving orphaned workers behind.

Fault injection follows ``test_grid_failures.py``: swap
``runner._measure_chunk`` for a wrapper that raises
``KeyboardInterrupt`` for one specific workload; pools fork after the
patch, so the injected interrupt fires inside the worker too.
"""

import time

from repro.eval import ResultCache, run_grid
from repro.eval import runner
from repro.machine import RegisterConfig
from repro.regalloc import AllocatorOptions

CFG = RegisterConfig(6, 4, 2, 2)
GOOD = ("compress", AllocatorOptions.base_chaitin(), CFG, "dynamic")
GOOD2 = ("li", AllocatorOptions.base_chaitin(), CFG, "dynamic")
BAD = ("eqntott", AllocatorOptions.base_chaitin(), CFG, "dynamic")

_real_measure_chunk = runner._measure_chunk


def _interrupting(chunk, verify=False, trace=False, resilient=False):
    if chunk[0][0] == "eqntott":
        raise KeyboardInterrupt
    return _real_measure_chunk(chunk, verify, trace=trace, resilient=resilient)


def test_serial_interrupt_returns_partial_report(monkeypatch):
    monkeypatch.setattr(runner, "_measure_chunk", _interrupting)
    cache = ResultCache()
    report = run_grid([GOOD, BAD, GOOD2], jobs=1, cache=cache)
    # The chunk before the interrupt landed; nothing was lost.
    assert GOOD in cache
    assert report.computed == [GOOD]
    assert report.interrupted
    # The interrupted chunk and everything after it are recorded, so
    # the report still covers every requested point.
    assert sorted(report.failed_keys()) == sorted([BAD, GOOD2])
    assert all(record.error == "interrupted" for record in report.failed)
    assert report.total == 3


def test_parallel_interrupt_shuts_pool_down(monkeypatch):
    monkeypatch.setattr(runner, "_measure_chunk", _interrupting)
    cache = ResultCache()
    calls = []
    started = time.perf_counter()
    report = run_grid(
        [GOOD, BAD, GOOD2],
        jobs=2,
        cache=cache,
        progress=lambda name, done, total: calls.append((done, total)),
        retries=2,
        backoff=0.05,
    )
    # Came back promptly: no retry rounds, no salvage grinding.
    assert time.perf_counter() - started < 30
    assert report.interrupted
    # The first-submitted chunk finished before the interrupt resolved.
    assert GOOD in cache
    assert GOOD in report.computed
    assert BAD in report.failed_keys()
    # Every chunk resolved exactly once, success or not.
    assert report.total == 3
    assert calls[-1][0] == calls[-1][1] == 3


def test_interrupt_failures_do_not_retry(monkeypatch):
    """Interrupted points are terminal: no pool-round retries."""
    monkeypatch.setattr(runner, "_measure_chunk", _interrupting)
    report = run_grid(
        [GOOD, BAD], jobs=2, cache=ResultCache(), retries=2, backoff=0.05
    )
    record = next(r for r in report.failed if r.key == BAD)
    assert record.attempts == 1
    assert record.error == "interrupted"


def test_uninterrupted_grid_reports_clean_flag():
    report = run_grid([GOOD], jobs=1, cache=ResultCache())
    assert not report.interrupted
    assert report.ok
