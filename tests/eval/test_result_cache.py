"""ResultCache semantics, measure/measure_cycles decoupling, run_grid."""

import pytest

from repro.eval import (
    RESULTS,
    clear_caches,
    experiment_grid,
    measure,
    measure_cycles,
    measure_full,
    run_grid,
    table4,
)
from repro.machine import RegisterConfig
from repro.regalloc import AllocatorOptions

KEY = ("compress", AllocatorOptions.improved_chaitin(), RegisterConfig(6, 4, 2, 2), "dynamic")
OTHER = ("compress", AllocatorOptions.base_chaitin(), RegisterConfig(6, 4, 2, 2), "dynamic")


@pytest.fixture(autouse=True)
def _clean_results():
    clear_caches()
    yield
    clear_caches()


class TestResultCache:
    def test_measure_full_is_cached(self):
        first = measure_full(*KEY)
        second = measure_full(*KEY)
        assert first is second
        assert RESULTS.hits == 1
        assert RESULTS.misses == 1

    def test_clear_resets_entries_and_counters(self):
        measure_full(*KEY)
        RESULTS.clear()
        assert len(RESULTS) == 0
        assert RESULTS.hits == 0 and RESULTS.misses == 0

    def test_peek_does_not_count(self):
        measure_full(*KEY)
        before = RESULTS.stats
        assert RESULTS.peek(KEY) is not None
        assert RESULTS.peek(OTHER) is None
        assert RESULTS.stats == before

    def test_measure_cycles_standalone(self):
        """Cycles no longer depend on a prior ``measure`` call.

        The old module-level dicts were populated as a pair by
        ``measure``; calling ``measure_cycles`` first used to miss.
        """
        cycles = measure_cycles(*KEY)
        assert cycles > 0
        # Both views come from the single cached Measurement.
        overhead = measure(*KEY)
        assert RESULTS.peek(KEY).overhead is overhead
        assert RESULTS.peek(KEY).cycles == cycles
        assert len(RESULTS) == 1

    def test_measurement_carries_pipeline_stats(self):
        record = measure_full(*KEY)
        assert record.stats.total_seconds > 0
        assert record.stats.build > 0


class TestRunGrid:
    def test_serial_prewarm_populates_cache(self):
        report = run_grid([KEY, OTHER, KEY], jobs=1)
        assert len(report.computed) == 2  # duplicates collapse
        assert report.ok and not report.cached
        assert KEY in RESULTS and OTHER in RESULTS

    def test_skips_already_cached(self):
        measure_full(*KEY)
        report = run_grid([KEY], jobs=1)
        assert not report.computed and not report.failed
        assert report.cached == [KEY]

    def test_parallel_matches_serial(self):
        serial = {k: measure_full(*k) for k in (KEY, OTHER)}
        clear_caches()
        run_grid([KEY, OTHER], jobs=2)
        for key, record in serial.items():
            parallel = RESULTS.peek(key)
            assert parallel is not None
            assert parallel.overhead == record.overhead
            assert parallel.cycles == record.cycles


class TestExperimentGrids:
    def test_grid_covers_driver(self):
        """Prewarming a driver's grid makes the driver itself all-hits."""
        keys = experiment_grid(table4)
        assert keys
        run_grid(keys, jobs=1)
        RESULTS.hits = RESULTS.misses = 0
        table4()
        assert RESULTS.misses == 0
        assert RESULTS.hits > 0

    def test_parallel_render_identical_to_serial(self):
        serial = table4().render()
        clear_caches()
        run_grid(experiment_grid(table4), jobs=2)
        assert table4().render() == serial
