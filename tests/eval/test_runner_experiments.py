"""Tests for the measurement runner and the experiment drivers.

Experiment drivers run on reduced sweeps and small workload subsets so
the suite stays fast; full-sweep runs live in benchmarks/.
"""

import math

import pytest

from repro.eval import (
    Overhead,
    ablation_bs_key,
    ablation_callee_model,
    ablation_priority_order,
    figure2,
    figure6,
    figure7,
    figure9,
    figure10,
    figure11,
    measure,
    measure_cycles,
    overhead_ratio,
    table2,
    table3,
    table4,
)
from repro.machine import RegisterConfig, mips_sweep
from repro.regalloc import AllocatorOptions

SMALL_SWEEP = [RegisterConfig(6, 4, 0, 0), RegisterConfig(8, 6, 2, 2)]


class TestRunner:
    def test_measure_returns_overhead(self):
        overhead = measure(
            "eqntott", AllocatorOptions.base_chaitin(), SMALL_SWEEP[0], "dynamic"
        )
        assert overhead.total > 0

    def test_measure_is_cached(self):
        a = measure(
            "eqntott", AllocatorOptions.base_chaitin(), SMALL_SWEEP[0], "dynamic"
        )
        b = measure(
            "eqntott", AllocatorOptions.base_chaitin(), SMALL_SWEEP[0], "dynamic"
        )
        assert a is b

    def test_invalid_info_rejected(self):
        from repro.eval.runner import allocate_workload

        with pytest.raises(ValueError, match="info"):
            allocate_workload(
                "eqntott", AllocatorOptions.base_chaitin(), SMALL_SWEEP[0], "vibes"
            )

    def test_measure_cycles(self):
        cycles = measure_cycles(
            "eqntott", AllocatorOptions.base_chaitin(), SMALL_SWEEP[0], "dynamic"
        )
        assert cycles > 0

    def test_overhead_ratio_conventions(self):
        zero = Overhead()
        some = Overhead(spill=5.0)
        assert overhead_ratio(zero, zero) == 1.0
        assert overhead_ratio(some, zero) == math.inf
        assert overhead_ratio(some, Overhead(spill=2.5)) == 2.0


class TestFigureDrivers:
    def test_figure2_structure_and_shape(self):
        result = figure2(programs=("eqntott",), configs=mips_sweep()[:5])
        overheads = result.overheads["eqntott"]
        assert len(overheads) == 5
        # Spill cost must collapse as registers grow...
        assert overheads[-1].spill <= overheads[0].spill
        # ... while call cost remains the dominant survivor.
        assert overheads[-1].call_cost >= overheads[-1].spill

    def test_figure6_ratios_not_below_one_much(self):
        result = figure6(programs=("ear",), configs=SMALL_SWEEP)
        for (program, label), values in result.series.items():
            assert len(values) == 2
            for v in values:
                assert v > 0.5  # improvements never catastrophic

    def test_figure7_improved_no_worse_than_base(self):
        base = figure2(programs=("ear",), configs=SMALL_SWEEP)
        improved = figure7(programs=("ear",), configs=SMALL_SWEEP)
        for b, i in zip(base.overheads["ear"], improved.overheads["ear"]):
            assert i.total <= b.total * 1.05

    def test_figure9_has_three_series(self):
        result = figure9(program="fpppp", configs=SMALL_SWEEP)
        labels = {label for (_, label) in result.series}
        assert labels == {"optimistic", "improved", "improved+optimistic"}

    def test_figure10_static_and_dynamic(self):
        result = figure10(programs=("gcc",), configs=SMALL_SWEEP)
        labels = {label for (_, label) in result.series}
        assert labels == {
            "improved/static",
            "improved/dynamic",
            "priority/static",
            "priority/dynamic",
        }

    def test_figure11_cbh_series(self):
        result = figure11(programs=("li",), configs=SMALL_SWEEP)
        labels = {label for (_, label) in result.series}
        assert "CBH/static" in labels
        assert "improved/dynamic" in labels

    def test_render_produces_table(self):
        result = figure2(programs=("eqntott",), configs=SMALL_SWEEP)
        text = result.render()
        assert "Figure 2" in text
        assert "(6,4,0,0)" in text
        assert "caller_save" in text


class TestTableDrivers:
    def test_table2_and_3_ratios_near_one(self):
        for driver in (table2, table3):
            result = driver(programs=("gcc",), configs=SMALL_SWEEP)
            values = result.values("gcc", "base/optimistic")
            for v in values:
                assert 0.2 < v < 5.0  # optimistic is a small effect

    def test_table4_speedups_finite(self):
        result = table4(programs=("sc",))
        assert "sc" in result.speedups
        assert math.isfinite(result.speedups["sc"])
        text = result.render()
        assert "speedup" in text


class TestAblations:
    def test_callee_model_ablation(self):
        result = ablation_callee_model(programs=("li",), configs=SMALL_SWEEP)
        values = result.values("li", "first/shared")
        # Shared is never worse by construction of the example class,
        # but at minimum the ratio is well-defined and positive.
        assert all(v > 0 for v in values)

    def test_bs_key_ablation(self):
        result = ablation_bs_key(programs=("ear",), configs=SMALL_SWEEP)
        assert ("ear", "max/delta") in result.series

    def test_priority_order_ablation(self):
        result = ablation_priority_order(programs=("gcc",), configs=SMALL_SWEEP)
        labels = {label for (_, label) in result.series}
        assert labels == {
            "remove_unconstrained",
            "sort_unconstrained",
            "sorting",
        }
