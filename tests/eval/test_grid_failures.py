"""Fault tolerance of ``run_grid``: crashing workers must not sink a sweep.

The fault injection swaps ``runner._measure_chunk`` for wrappers that
raise, hang or kill their worker process for one specific workload.
``run_grid`` submits a trampoline that resolves ``_measure_chunk``
through the module globals, and worker pools fork after the patch is
applied, so the injected fault reaches the children too.
"""

import multiprocessing
import os
import time

from repro.eval import ResultCache, run_grid
from repro.eval import runner
from repro.machine import RegisterConfig
from repro.regalloc import AllocatorOptions

CFG = RegisterConfig(6, 4, 2, 2)
GOOD = ("compress", AllocatorOptions.base_chaitin(), CFG, "dynamic")
GOOD2 = ("li", AllocatorOptions.base_chaitin(), CFG, "dynamic")
BAD = ("eqntott", AllocatorOptions.base_chaitin(), CFG, "dynamic")

_real_measure_chunk = runner._measure_chunk


def _crashing(chunk, verify=False, trace=False, resilient=False):
    if chunk[0][0] == "eqntott":
        raise RuntimeError("injected worker crash")
    return _real_measure_chunk(chunk, verify, trace=trace, resilient=resilient)


def _hanging(chunk, verify=False, trace=False, resilient=False):
    if chunk[0][0] == "eqntott":
        time.sleep(8)
    return []


def _dying(chunk, verify=False, trace=False, resilient=False):
    if chunk[0][0] == "eqntott":
        if multiprocessing.parent_process() is not None:
            os._exit(13)  # hard-kill the worker: BrokenProcessPool
        raise RuntimeError("injected hard crash")
    return _real_measure_chunk(chunk, verify, trace=trace, resilient=resilient)


def test_worker_exception_contained(monkeypatch):
    monkeypatch.setattr(runner, "_measure_chunk", _crashing)
    cache = ResultCache()
    calls = []
    report = run_grid(
        [GOOD, BAD, GOOD2],
        jobs=2,
        cache=cache,
        progress=lambda name, done, total: calls.append((done, total)),
        retries=1,
        backoff=0.05,
    )
    # The surviving chunks still landed in the cache...
    assert GOOD in cache and GOOD2 in cache
    assert sorted(report.computed) == sorted([GOOD, GOOD2])
    # ...and the bad grid point became a failure record, not a crash.
    assert report.failed_keys() == [BAD]
    record = report.failed[0]
    assert "injected worker crash" in record.error
    assert record.attempts == 3  # two pool rounds + in-process salvage
    # Progress stayed consistent: every chunk resolved exactly once.
    assert calls[-1] == (3, 3)
    assert [done for done, _ in calls] == [1, 2, 3]


def test_serial_run_salvages_per_key(monkeypatch):
    monkeypatch.setattr(runner, "_measure_chunk", _crashing)
    cache = ResultCache()
    report = run_grid([GOOD, BAD], jobs=1, cache=cache)
    assert GOOD in cache
    assert report.computed == [GOOD]
    assert report.failed_keys() == [BAD]


def test_timeout_recorded_without_hanging(monkeypatch):
    monkeypatch.setattr(runner, "_measure_chunk", _hanging)
    cache = ResultCache()
    started = time.perf_counter()
    report = run_grid(
        [GOOD, BAD], jobs=2, cache=cache, timeout=2.0, retries=0
    )
    # The parent came back long before the 8s hang finished.
    assert time.perf_counter() - started < 7
    assert report.failed_keys() == [BAD]
    assert "timed out" in report.failed[0].error


def test_broken_pool_contained(monkeypatch):
    monkeypatch.setattr(runner, "_measure_chunk", _dying)
    cache = ResultCache()
    report = run_grid(
        [GOOD, BAD], jobs=2, cache=cache, retries=1, backoff=0.05
    )
    # A dead worker process (BrokenProcessPool) neither raised nor
    # took the healthy chunk down with it.
    assert GOOD in cache
    assert GOOD in report.computed
    assert report.failed_keys() == [BAD]
    assert "injected hard crash" in report.failed[0].error


def test_reports_already_cached_keys(monkeypatch):
    cache = ResultCache()
    first = run_grid([GOOD], jobs=1, cache=cache)
    assert first.computed == [GOOD]
    monkeypatch.setattr(runner, "_measure_chunk", _crashing)
    # Cached keys are never recomputed, so the injected fault is moot.
    second = run_grid([GOOD], jobs=1, cache=cache)
    assert second.cached == [GOOD]
    assert not second.computed and not second.failed
