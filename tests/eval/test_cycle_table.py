"""Unit tests for the per-instruction cycle table."""

from repro.eval.cycles import (
    CALL_CYCLES,
    FLOAT_DIV_CYCLES,
    INT_DIV_CYCLES,
    INT_MUL_CYCLES,
    LOAD_CYCLES,
    STORE_CYCLES,
    instr_cycles,
)
from repro.ir import (
    FLOAT,
    INT,
    BinaryOpcode,
    BinOp,
    Call,
    Const,
    Copy,
    Load,
    Store,
    VReg,
)
from repro.regalloc.framework import FunctionAllocation
from repro.regalloc.spillinstr import OverheadKind, SpillLoad, SpillStore
from repro.machine import RegisterConfig, RegisterFile


def make_allocation(assignment):
    return FunctionAllocation(
        func=None, assignment=assignment, infos={}
    )


def regs():
    rf = RegisterFile(RegisterConfig(2, 2, 1, 1))
    a = VReg(0, INT, "a")
    b = VReg(1, INT, "b")
    f = VReg(2, FLOAT, "f")
    bank = rf.bank(INT)
    fbank = rf.bank(FLOAT)
    assignment = {a: bank.caller[0], b: bank.caller[1], f: fbank.caller[0]}
    return a, b, f, assignment


class TestCycleTable:
    def test_memory_operations(self):
        a, b, f, assignment = regs()
        alloc = make_allocation(assignment)
        assert instr_cycles(Load(a, "g", b), alloc) == LOAD_CYCLES
        assert instr_cycles(Store("g", a, b), alloc) == STORE_CYCLES
        assert (
            instr_cycles(SpillLoad(a, 0, OverheadKind.SPILL), alloc)
            == LOAD_CYCLES
        )
        assert (
            instr_cycles(SpillStore(0, a, OverheadKind.CALLER_SAVE), alloc)
            == STORE_CYCLES
        )

    def test_multiplication_and_division(self):
        a, b, f, assignment = regs()
        alloc = make_allocation(assignment)
        assert (
            instr_cycles(BinOp(BinaryOpcode.MUL, a, a, b), alloc)
            == INT_MUL_CYCLES
        )
        assert (
            instr_cycles(BinOp(BinaryOpcode.DIV, a, a, b), alloc)
            == INT_DIV_CYCLES
        )
        assert (
            instr_cycles(BinOp(BinaryOpcode.MOD, a, a, b), alloc)
            == INT_DIV_CYCLES
        )
        assert (
            instr_cycles(BinOp(BinaryOpcode.DIV, f, f, f), alloc)
            == FLOAT_DIV_CYCLES
        )
        # Float multiply is pipelined: one cycle in this model.
        assert instr_cycles(BinOp(BinaryOpcode.MUL, f, f, f), alloc) == 1

    def test_simple_alu_one_cycle(self):
        a, b, f, assignment = regs()
        alloc = make_allocation(assignment)
        assert instr_cycles(BinOp(BinaryOpcode.ADD, a, a, b), alloc) == 1
        assert instr_cycles(Const(a, 7), alloc) == 1

    def test_coalesced_copy_is_free(self):
        a, b, f, assignment = regs()
        assignment = dict(assignment)
        assignment[b] = assignment[a]  # same physical register
        alloc = make_allocation(assignment)
        assert instr_cycles(Copy(a, b), alloc) == 0

    def test_surviving_copy_costs_one(self):
        a, b, f, assignment = regs()
        alloc = make_allocation(assignment)
        assert instr_cycles(Copy(a, b), alloc) == 1

    def test_call_overhead(self):
        a, b, f, assignment = regs()
        alloc = make_allocation(assignment)
        assert instr_cycles(Call(a, "f", [b]), alloc) == CALL_CYCLES
