"""Tests for the extension experiment drivers (reduced sweeps)."""

from repro.eval.experiments import (
    ablation_ipra,
    ablation_optimized_ir,
    ablation_rematerialization,
    ablation_spill_metric,
    static_penalty,
)
from repro.machine import RegisterConfig

SMALL = [RegisterConfig(6, 4, 0, 0), RegisterConfig(8, 6, 2, 2)]


class TestExtensionDrivers:
    def test_optimized_ir_is_overhead_neutral(self):
        result = ablation_optimized_ir(programs=("gcc",), configs=SMALL)
        ratios = result.values("gcc", "plain/optimized")
        # The optimizer removes computation, not register-kind
        # decisions; overhead is essentially unchanged.
        assert all(0.8 <= r <= 1.25 for r in ratios)

    def test_rematerialization_fires_on_call_heavy_program(self):
        result = ablation_rematerialization(programs=("sc",), configs=SMALL)
        ratios = result.values("sc", "plain/remat")
        assert all(r >= 0.999 for r in ratios)
        assert max(ratios) > 1.05

    def test_ipra_helps_sc_and_respects_recursion(self):
        result = ablation_ipra(programs=("sc", "li"), configs=SMALL)
        assert max(result.values("sc", "plain/IPRA")) > 1.1
        assert all(r == 1.0 for r in result.values("li", "plain/IPRA"))

    def test_spill_metric_plain_cost_loses_under_pressure(self):
        result = ablation_spill_metric(programs=("tomcatv",), configs=SMALL)
        cost_ratios = result.values("tomcatv", "cost")
        assert max(cost_ratios) > 1.2

    def test_static_penalty_shapes(self):
        result = static_penalty(programs=("tomcatv", "sc"), configs=SMALL)
        assert all(r == 1.0 for r in result.values("tomcatv", "static/dynamic"))
        assert all(r >= 0.999 for r in result.values("sc", "static/dynamic"))

    def test_all_drivers_render(self):
        for driver, kwargs in (
            (ablation_optimized_ir, dict(programs=("gcc",), configs=SMALL)),
            (ablation_rematerialization, dict(programs=("sc",), configs=SMALL)),
            (ablation_ipra, dict(programs=("sc",), configs=SMALL)),
            (ablation_spill_metric, dict(programs=("tomcatv",), configs=SMALL)),
            (static_penalty, dict(programs=("sc",), configs=SMALL)),
        ):
            text = driver(**kwargs).render()
            assert "(6,4,0,0)" in text
