"""Tests for the public API (repro.core) and the report renderer."""

import pytest

from repro.core import AllocationOutcome, AllocatorOptions, allocate, compile_source
from repro.eval.render import format_value, render_table
from tests.conftest import SMALL_CALL_SOURCE


class TestAllocateAPI:
    def test_default_options_and_dynamic_info(self):
        program = compile_source(SMALL_CALL_SOURCE)
        outcome = allocate(program, config=(6, 4, 2, 2))
        assert isinstance(outcome, AllocationOutcome)
        assert outcome.overhead.total >= 0
        assert outcome.program is outcome.allocation.program
        assert outcome.program is not program  # original untouched

    def test_config_accepts_tuple_and_namedtuple(self):
        from repro.machine import RegisterConfig

        program = compile_source(SMALL_CALL_SOURCE)
        a = allocate(program, config=(6, 4, 2, 2))
        b = allocate(program, config=RegisterConfig(6, 4, 2, 2))
        assert a.overhead.total == b.overhead.total

    def test_static_info(self):
        program = compile_source(SMALL_CALL_SOURCE)
        outcome = allocate(program, config=(6, 4, 0, 0), info="static")
        assert outcome.overhead.total > 0

    def test_bad_info_rejected(self):
        program = compile_source(SMALL_CALL_SOURCE)
        with pytest.raises(ValueError, match="info"):
            allocate(program, config=(6, 4, 2, 2), info="vibes")

    def test_supplied_profile_reused(self):
        from repro.profile import run_program

        program = compile_source(SMALL_CALL_SOURCE)
        profile = run_program(program).profile
        outcome = allocate(program, config=(6, 4, 2, 2), profile=profile)
        assert outcome.profile is profile

    def test_explicit_allocator(self):
        program = compile_source(SMALL_CALL_SOURCE)
        base = allocate(
            program, config=(6, 4, 0, 0), options=AllocatorOptions.base_chaitin()
        )
        improved = allocate(
            program,
            config=(6, 4, 0, 0),
            options=AllocatorOptions.improved_chaitin(),
        )
        assert improved.overhead.total <= base.overhead.total

    def test_top_level_reexports(self):
        import repro

        assert repro.AllocatorOptions is AllocatorOptions
        assert callable(repro.allocate)
        assert callable(repro.compile_source)
        assert repro.__version__


class TestRenderer:
    def test_format_value_styles(self):
        assert format_value(1.234) == "1.23"
        assert format_value(float("inf")) == "inf"
        assert format_value(123456.0) == "1.23e+05"
        assert format_value(0.0) == "0.00"

    def test_render_table_alignment(self):
        text = render_table(
            "title", ["col", "x"], [["aa", "1"], ["b", "22"]]
        )
        lines = text.splitlines()
        assert lines[0] == "title"
        assert all(len(line) == len(lines[2]) for line in lines[2:-1])
        assert "aa" in text and "22" in text

    def test_render_table_empty_rows(self):
        text = render_table("empty", ["a"], [])
        assert "empty" in text
