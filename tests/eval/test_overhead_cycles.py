"""Unit tests for overhead accounting and the cycle model."""

from repro.eval import (
    Overhead,
    overhead_by_function,
    program_cycles,
    program_overhead,
    speedup_percent,
)
from repro.lang import compile_source
from repro.machine import RegisterConfig, register_file
from repro.profile import run_allocated, run_program
from repro.regalloc import AllocatorOptions, allocate_program
from tests.conftest import SMALL_CALL_SOURCE


class TestOverheadArithmetic:
    def test_total_and_call_cost(self):
        o = Overhead(spill=1.0, caller_save=2.0, callee_save=3.0, shuffle=4.0)
        assert o.total == 10.0
        assert o.call_cost == 5.0

    def test_addition(self):
        a = Overhead(spill=1.0, caller_save=2.0)
        b = Overhead(callee_save=3.0, shuffle=4.0)
        c = a + b
        assert (c.spill, c.caller_save, c.callee_save, c.shuffle) == (1, 2, 3, 4)

    def test_zero_default(self):
        assert Overhead().total == 0.0


class TestAnalyticVsExecuted:
    def _check(self, options, config):
        program = compile_source(SMALL_CALL_SOURCE)
        base = run_program(program)
        rf = register_file(RegisterConfig(*config))
        allocation = allocate_program(program, rf, options)
        analytic = program_overhead(allocation, base.profile)
        mech = run_allocated(allocation)
        from repro.regalloc.spillinstr import OverheadKind

        assert analytic.spill == mech.overhead_counts[OverheadKind.SPILL]
        assert (
            analytic.caller_save
            == mech.overhead_counts[OverheadKind.CALLER_SAVE]
        )
        assert (
            analytic.callee_save
            == mech.overhead_counts[OverheadKind.CALLEE_SAVE]
        )
        assert analytic.shuffle == mech.shuffle_count

    def test_base_chaitin_counts_match(self):
        self._check(AllocatorOptions.base_chaitin(), (6, 4, 0, 0))

    def test_improved_counts_match(self):
        self._check(AllocatorOptions.improved_chaitin(), (4, 2, 2, 2))

    def test_cbh_counts_match(self):
        self._check(AllocatorOptions.cbh(), (6, 4, 1, 1))

    def test_under_pressure_counts_match(self):
        self._check(AllocatorOptions.base_chaitin(), (3, 2, 1, 1))


class TestPerFunctionBreakdown:
    def test_components_sum_to_program_total(self):
        program = compile_source(SMALL_CALL_SOURCE)
        base = run_program(program)
        rf = register_file(RegisterConfig(6, 4, 0, 0))
        allocation = allocate_program(program, rf, AllocatorOptions.base_chaitin())
        per_function = overhead_by_function(allocation, base.profile)
        total = program_overhead(allocation, base.profile)
        assert sum(o.total for o in per_function.values()) == total.total

    def test_cold_function_contributes_nothing(self):
        source = """
        int out[1];
        int cold(int x) { return x * 2; }
        void main() { out[0] = 1; }
        """
        program = compile_source(source)
        base = run_program(program)
        rf = register_file(RegisterConfig(3, 2, 1, 1))
        allocation = allocate_program(program, rf, AllocatorOptions.base_chaitin())
        per_function = overhead_by_function(allocation, base.profile)
        assert per_function["cold"].total == 0.0


class TestCycles:
    def test_memory_traffic_raises_cycles(self):
        program = compile_source(SMALL_CALL_SOURCE)
        base = run_program(program)
        # Tight register file forces overhead ops; cycles must grow.
        roomy = allocate_program(
            program,
            register_file(RegisterConfig(8, 4, 4, 2)),
            AllocatorOptions.improved_chaitin(),
        )
        tight = allocate_program(
            program,
            register_file(RegisterConfig(3, 2, 0, 1)),
            AllocatorOptions.base_chaitin(),
        )
        assert program_cycles(tight, base.profile) > program_cycles(
            roomy, base.profile
        )

    def test_speedup_percent(self):
        assert speedup_percent(110.0, 100.0) == 10.0
        assert speedup_percent(100.0, 100.0) == 0.0
        assert speedup_percent(0.0, 0.0) == 0.0

    def test_cycles_positive(self):
        program = compile_source(SMALL_CALL_SOURCE)
        base = run_program(program)
        allocation = allocate_program(
            program,
            register_file(RegisterConfig(6, 4, 2, 2)),
            AllocatorOptions.improved_chaitin(),
        )
        assert program_cycles(allocation, base.profile) > 0
