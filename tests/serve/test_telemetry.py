"""End-to-end request telemetry through the real serving stack.

Every test boots a real :class:`ServerThread` (most in the default
supervised mode, so spans genuinely cross the fork into worker
subprocesses) and asserts the tentpole property: *every* response
carries a trace ID whose full span tree is reconstructable from the
flight recorder — including throttles, rejections and answers that
survived a worker kill.
"""

import asyncio
import json

import pytest

from repro.chaos import ServiceFault, ServiceFaultPlan
from repro.obs import TRACE_HEADER, attempt_outcomes, mint_trace_id
from repro.serve import (
    ServerConfig,
    ServerThread,
    http_get_json,
    http_post_json,
)

SOURCE = (
    "int out[2];\n"
    "int twice(int x) { return x * 2; }\n"
    "void main() {\n"
    "    int total = 0;\n"
    "    for (int i = 0; i < 10; i = i + 1) { total = total + twice(i); }\n"
    "    out[0] = total;\n"
    "}\n"
)


def post(host, port, path, payload, timeout=60.0):
    return asyncio.run(http_post_json(host, port, path, payload, timeout))


def get(host, port, path, timeout=60.0):
    return asyncio.run(http_get_json(host, port, path, timeout))


def raw_request(host, port, lines, body=b""):
    """One hand-rolled HTTP exchange; returns (status, headers, raw body)."""

    async def go():
        reader, writer = await asyncio.open_connection(host, port)
        writer.write("\r\n".join(lines).encode("latin-1") + b"\r\n\r\n" + body)
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await reader.readexactly(length) if length else b""
        writer.close()
        return status, headers, raw

    return asyncio.run(go())


def names_in(tree):
    """Every span name in a nested span tree, depth-first."""
    found = []
    stack = list(tree)
    while stack:
        node = stack.pop()
        found.append(node["name"])
        stack.extend(node.get("children", []))
    return found


def variant(index):
    return SOURCE.replace("x * 2", f"x * 2 + {index}")


@pytest.fixture(scope="module")
def server():
    config = ServerConfig(port=0, supervisor_cache_size=0)
    with ServerThread(config) as address:
        yield address


class TestEveryResponseIsTraced:
    def test_ok_response_carries_trace_id_and_breakdown(self, server):
        host, port = server
        status, headers, body = post(
            host, port, "/allocate", {"source": SOURCE}
        )
        assert status == 200
        tid = body["trace_id"]
        assert len(tid) == 16
        assert headers["x-repro-trace-id"] == tid
        telemetry = body["telemetry"]
        assert telemetry["spans"] >= 4  # ingress, queue, dispatch, exec ...
        decomposed = telemetry["breakdown"]
        assert decomposed["total_ms"] > 0
        assert "queue_ms" in decomposed
        assert "service_ms" in decomposed

    def test_validation_400_still_traced(self, server):
        host, port = server
        status, headers, body = post(
            host, port, "/allocate", {"source": SOURCE, "preset": "nope"}
        )
        assert status == 400
        assert body["trace_id"] == headers["x-repro-trace-id"]

    def test_404_and_405_traced(self, server):
        host, port = server
        for path_status in (("/nope", 404),):
            status, headers, raw = raw_request(
                host,
                port,
                [f"GET {path_status[0]} HTTP/1.1", "Host: x"],
            )
            assert status == path_status[1]
            body = json.loads(raw)
            assert body["trace_id"] == headers["x-repro-trace-id"]

    def test_oversized_413_traced(self):
        config = ServerConfig(port=0, max_body_bytes=500, supervised=False)
        with ServerThread(config) as (host, port):
            status, headers, body = post(
                host, port, "/allocate", {"source": SOURCE, "name": "x" * 900}
            )
            assert status == 413
            assert body["trace_id"] == headers["x-repro-trace-id"]

    def test_adopted_trace_id_from_request_header(self, server):
        host, port = server
        minted = mint_trace_id()
        payload = json.dumps({"source": SOURCE}).encode()
        status, headers, raw = raw_request(
            host,
            port,
            [
                "POST /allocate HTTP/1.1",
                "Host: x",
                f"{TRACE_HEADER}: {minted}",
                f"Content-Length: {len(payload)}",
            ],
            payload,
        )
        assert status == 200
        body = json.loads(raw)
        assert body["trace_id"] == minted
        assert headers["x-repro-trace-id"] == minted

    def test_throttled_429_is_traced(self):
        """Backpressure refusals still answer with a trace identity."""
        config = ServerConfig(
            port=0, queue_size=1, workers=1, batch_size=1, supervised=False
        )
        thread = ServerThread(config)
        host, port = thread.start()
        try:
            release = __import__("threading").Event()
            real = thread.server.engine.submit_batch

            def stalled(requests):
                release.wait(10)
                return real(requests)

            thread.server.engine.submit_batch = stalled

            async def flood():
                first = asyncio.ensure_future(
                    http_post_json(host, port, "/allocate", {"source": SOURCE})
                )
                await asyncio.sleep(0.3)
                tasks = [
                    asyncio.ensure_future(
                        http_post_json(
                            host, port, "/allocate", {"source": SOURCE}
                        )
                    )
                    for _ in range(4)
                ]
                await asyncio.sleep(0.5)
                release.set()
                outcomes = list(await asyncio.gather(*tasks))
                await first
                return outcomes

            outcomes = asyncio.run(flood())
            throttled = [o for o in outcomes if o[0] == 429]
            assert throttled
            _, headers, body = throttled[0]
            assert body["trace_id"] == headers["x-repro-trace-id"]
            report = thread.server.slo.report()
            assert report["throttled"] >= 1
            assert report["availability"] == 1.0  # lenient by default
        finally:
            thread.stop()


class TestFlightRecorderEndpoints:
    def test_trace_resolves_to_cross_process_tree(self, server):
        host, port = server
        status, _, body = post(
            host, port, "/allocate", {"source": variant(1), "name": "tree"}
        )
        assert status == 200
        tid = body["trace_id"]
        status, full = get(host, port, f"/debug/requests/{tid}")
        assert status == 200
        assert full["trace_id"] == tid
        names = names_in(full["tree"])
        for expected in ("ingress", "queue-wait", "dispatch", "worker-exec"):
            assert expected in names, names
        assert any(name.startswith("engine:") for name in names)
        # The worker-exec span really ran in another process.
        pids = set()
        stack = list(full["tree"])
        while stack:
            node = stack.pop()
            pids.add(node["pid"])
            stack.extend(node.get("children", []))
        assert len(pids) >= 2

    def test_index_lists_recent_requests(self, server):
        host, port = server
        _, _, body = post(
            host, port, "/allocate", {"source": variant(2), "name": "idx"}
        )
        status, index = get(host, port, "/debug/requests")
        assert status == 200
        assert index["recorded"] >= 1
        recent_ids = [row["trace_id"] for row in index["recent"]]
        assert body["trace_id"] in recent_ids

    def test_unknown_trace_is_404(self, server):
        host, port = server
        status, body = get(host, port, "/debug/requests/deadbeefdeadbeef")
        assert status == 404
        assert body["error_type"] == "UnknownTrace"

    def test_chrome_export_of_one_request(self, server):
        host, port = server
        _, _, body = post(
            host, port, "/allocate", {"source": variant(3), "name": "chrome"}
        )
        tid = body["trace_id"]
        status, document = get(
            host, port, f"/debug/requests/{tid}?format=chrome"
        )
        assert status == 200
        assert document["otherData"]["trace_id"] == tid
        complete = [
            e for e in document["traceEvents"] if e.get("ph") == "X"
        ]
        assert complete
        assert min(e["ts"] for e in complete) == 0.0  # rebased timeline

    def test_engine_cache_hit_is_traced(self, server):
        host, port = server
        payload = {"source": variant(4), "preset": "base", "name": "cached"}
        post(host, port, "/allocate", payload)
        config = ServerConfig(port=0)  # fresh server with caching on
        with ServerThread(config) as (chost, cport):
            post(chost, cport, "/allocate", payload)
            status, _, second = post(chost, cport, "/allocate", payload)
            assert status == 200
            assert second["cache"] == "hit"
            tid = second["trace_id"]
            status, full = get(chost, cport, f"/debug/requests/{tid}")
            assert status == 200
            assert "engine-cache" in names_in(full["tree"])


class TestMetricsEndpoints:
    def test_metrics_json_has_slo_and_labeled_latency(self, server):
        host, port = server
        post(host, port, "/allocate", {"source": variant(5), "name": "slo"})
        status, body = get(host, port, "/metrics")
        assert status == 200
        slo = body["slo"]
        assert slo["requests"] >= 1
        assert 0.0 <= slo["availability"] <= 1.0
        assert "error_budget_burned" in slo
        labeled = body["labeled"]["serve.request_ms"]
        assert any('outcome="ok"' in key for key in labeled)

    def test_prometheus_exposition(self, server):
        host, port = server
        post(host, port, "/allocate", {"source": variant(6), "name": "prom"})
        status, headers, raw = raw_request(
            host,
            port,
            ["GET /metrics?format=prometheus HTTP/1.1", "Host: x"],
        )
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        assert "version=0.0.4" in headers["content-type"]
        text = raw.decode("utf-8")
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_request_ms_bucket{" in text
        assert 'le="+Inf"' in text
        assert "repro_slo_availability " in text

    def test_healthz_reports_telemetry_state(self, server):
        host, port = server
        status, body = get(host, port, "/healthz")
        assert status == 200
        assert body["telemetry"]["enabled"] is True
        assert body["telemetry"]["flight_recorded"] >= 0


class TestTraceContinuityAcrossFailures:
    def test_worker_kill_keeps_trace_id_and_shows_both_attempts(self):
        """A request whose worker was SIGKILLed answers 200 under the
        *same* trace ID, and the span tree testifies to the failed
        attempt: dispatch outcomes ``[crash, ok]``."""
        config = ServerConfig(
            port=0, workers=1, worker_retries=2, supervisor_cache_size=0
        )
        thread = ServerThread(config)
        host, port = thread.start()
        try:
            thread.server.supervisor.arm_chaos(
                ServiceFaultPlan(
                    seed=0, faults=[ServiceFault(action="kill", after=1)]
                )
            )
            status, headers, body = post(
                host, port, "/allocate", {"source": variant(7), "name": "kill"}
            )
            assert status == 200
            note = body["supervisor"]
            assert note["attempts"] == 2
            assert note["degraded"] is False
            tid = body["trace_id"]
            assert headers["x-repro-trace-id"] == tid
            entry = thread.server.flight.lookup(tid)
            assert entry is not None
            assert attempt_outcomes(entry.spans) == ["crash", "ok"]
            names = [span["name"] for span in entry.spans]
            assert names.count("dispatch") == 2
            assert "worker-exec" in names
        finally:
            thread.stop()

    def test_degraded_inline_answer_is_traceable(self):
        """Retries exhausted: the inline spill-everywhere answer keeps
        the trace ID, records a degrade-inline span, and lands in the
        flight recorder's degraded view."""
        config = ServerConfig(
            port=0, workers=1, worker_retries=0, supervisor_cache_size=0
        )
        thread = ServerThread(config)
        host, port = thread.start()
        try:
            thread.server.supervisor.arm_chaos(
                ServiceFaultPlan(
                    seed=0, faults=[ServiceFault(action="kill", after=1)]
                )
            )
            status, _, body = post(
                host,
                port,
                "/allocate",
                {"source": variant(8), "preset": "improved", "name": "deg"},
            )
            assert status == 200
            assert body["preset"] == "spillall"
            assert body["supervisor"]["degraded"] is True
            tid = body["trace_id"]
            status, full = get(host, port, f"/debug/requests/{tid}")
            assert status == 200
            assert full["degraded"] is True
            names = names_in(full["tree"])
            assert "degrade-inline" in names
            assert "dispatch" in names  # the failed attempt is in the story
            degraded_ids = [
                row["trace_id"]
                for row in thread.server.flight.index()["degraded"]
            ]
            assert tid in degraded_ids
            assert thread.server.slo.report()["degraded"] >= 1
        finally:
            thread.stop()


class TestTelemetryOptOut:
    def test_disabled_telemetry_restores_old_wire_shape(self):
        config = ServerConfig(port=0, telemetry=False, supervised=False)
        with ServerThread(config) as (host, port):
            status, headers, body = post(
                host, port, "/allocate", {"source": SOURCE}
            )
            assert status == 200
            assert "trace_id" not in body
            assert "telemetry" not in body
            assert "x-repro-trace-id" not in headers
            status, index = get(host, port, "/debug/requests")
            assert index["recorded"] == 0
