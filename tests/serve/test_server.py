"""The HTTP front end: request lifecycle, backpressure, deadlines.

Integration-style: every test boots a real :class:`ServerThread` on
an ephemeral port and speaks actual HTTP through the loadgen client
helpers, so the wire format the tests pin is the wire format clients
see.
"""

import asyncio
import json
import time

import pytest

from repro.serve import (
    LoadgenConfig,
    ServerConfig,
    ServerThread,
    http_get_json,
    http_post_json,
    run_loadgen,
)

SOURCE = (
    "int out[2];\n"
    "int twice(int x) { return x * 2; }\n"
    "void main() {\n"
    "    int total = 0;\n"
    "    for (int i = 0; i < 10; i = i + 1) { total = total + twice(i); }\n"
    "    out[0] = total;\n"
    "}\n"
)


def post(host, port, path, payload, timeout=60.0):
    return asyncio.run(http_post_json(host, port, path, payload, timeout))


def get(host, port, path, timeout=60.0):
    return asyncio.run(http_get_json(host, port, path, timeout))


@pytest.fixture(scope="module")
def server():
    with ServerThread(ServerConfig(port=0)) as address:
        yield address


class TestAllocateEndpoint:
    def test_allocates_and_stamps_schema(self, server):
        host, port = server
        status, _, body = post(host, port, "/allocate", {"source": SOURCE})
        assert status == 200
        assert body["status"] == "ok"
        assert body["schema_version"] == 1
        assert body["report"]["schema_version"] == 1
        assert body["report"]["overhead"]["total"] >= 0
        assert "main" in body["report"]["functions"]

    def test_repeat_request_hits_content_cache(self, server):
        host, port = server
        payload = {"source": SOURCE, "preset": "base"}
        status, _, first = post(host, port, "/allocate", payload)
        assert status == 200
        status, _, second = post(host, port, "/allocate", payload)
        assert status == 200
        assert second["cache"] == "hit"
        assert second["fingerprint"] == first["fingerprint"]
        assert second["report"] == first["report"]

    def test_workload_and_config_fields(self, server):
        host, port = server
        status, _, body = post(
            host,
            port,
            "/allocate",
            {"workload": "compress", "preset": "base", "config": "4,2,1,1"},
        )
        assert status == 200
        assert body["report"]["config"] == "(4,2,1,1)"

    def test_trace_field_returns_decision_events(self, server):
        host, port = server
        status, _, body = post(
            host, port, "/allocate", {"source": SOURCE, "trace": True}
        )
        assert status == 200
        kinds = {event["kind"] for event in body["trace"]}
        assert "assign" in kinds

    def test_bad_source_is_400_not_crash(self, server):
        host, port = server
        status, _, body = post(
            host, port, "/allocate", {"source": "int main( {"}
        )
        assert status == 400
        assert body["status"] == "error"
        assert body["schema_version"] == 1

    def test_unknown_preset_is_400(self, server):
        host, port = server
        status, _, body = post(
            host, port, "/allocate", {"source": SOURCE, "preset": "nope"}
        )
        assert status == 400
        assert "unknown preset" in body["error"]

    def test_unknown_field_is_400(self, server):
        host, port = server
        status, _, body = post(
            host, port, "/allocate", {"source": SOURCE, "bogus": 1}
        )
        assert status == 400
        assert "bogus" in body["error"]

    def test_ambiguous_program_is_400(self, server):
        host, port = server
        status, _, _ = post(
            host,
            port,
            "/allocate",
            {"source": SOURCE, "workload": "compress"},
        )
        assert status == 400

    def test_malformed_json_is_400(self, server):
        host, port = server

        async def send_garbage():
            reader, writer = await asyncio.open_connection(host, port)
            body = b"{not json"
            writer.write(
                (
                    f"POST /allocate HTTP/1.1\r\nHost: x\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                ).encode()
                + body
            )
            await writer.drain()
            status_line = await reader.readline()
            writer.close()
            return int(status_line.split()[1])

        assert asyncio.run(send_garbage()) == 400


class TestBodyLimits:
    def test_oversized_body_is_413_with_configured_limit(self):
        config = ServerConfig(port=0, max_body_bytes=1000, supervised=False)
        with ServerThread(config) as (host, port):
            payload = {"source": SOURCE, "name": "x" * 2000}
            status, _, body = post(host, port, "/allocate", payload)
            assert status == 413
            assert body["status"] == "error"
            assert body["error_type"] == "PayloadTooLarge"
            assert body["max_body_bytes"] == 1000
            assert body["schema_version"] == 1
            # Under the limit still works on the same server.
            status, _, body = post(host, port, "/allocate", {"source": SOURCE})
            assert status == 200

    def test_default_limit_is_one_mebibyte(self):
        from repro.serve.server import MAX_BODY_BYTES

        assert ServerConfig().max_body_bytes == MAX_BODY_BYTES == 1024 * 1024

    def test_truncated_body_is_structured_400(self, server):
        """A short body (vs Content-Length) answers 400, not a reset."""
        host, port = server

        async def send_truncated():
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                b"POST /allocate HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 500\r\n\r\n"
                b'{"source": "int main() {'
            )
            await writer.drain()
            writer.write_eof()
            status_line = await reader.readline()
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode().partition(":")
                headers[name.strip().lower()] = value.strip()
            raw = await reader.read()
            writer.close()
            return int(status_line.split()[1]), json.loads(raw.decode())

        status, body = asyncio.run(send_truncated())
        assert status == 400
        assert body["error_type"] == "TruncatedBody"
        assert body["schema_version"] == 1


class TestDeadlines:
    def test_impossible_deadline_degrades_resiliently(self, server):
        """Resilient default: a blown budget degrades, never 500s."""
        host, port = server
        status, _, body = post(
            host,
            port,
            "/allocate",
            {"source": SOURCE, "deadline_ms": 1e-6, "name": "tight"},
        )
        assert status == 200
        assert body["report"]["resilience"]["degraded"]

    def test_impossible_deadline_errors_without_resilience(self, server):
        host, port = server
        status, _, body = post(
            host,
            port,
            "/allocate",
            {
                "source": SOURCE,
                "deadline_ms": 1e-6,
                "resilient": False,
                "name": "tight",
            },
        )
        assert status == 500
        assert body["error_type"] == "BudgetExceeded"

    def test_nonpositive_deadline_rejected(self, server):
        host, port = server
        status, _, _ = post(
            host, port, "/allocate", {"source": SOURCE, "deadline_ms": -5}
        )
        assert status == 400


class TestBatchEndpoint:
    def test_batch_answers_in_order(self, server):
        host, port = server
        status, _, body = post(
            host,
            port,
            "/batch",
            {
                "requests": [
                    {"source": SOURCE, "preset": "base"},
                    {"source": SOURCE, "preset": "improved"},
                ]
            },
        )
        assert status == 200
        assert body["schema_version"] == 1
        results = body["results"]
        assert [r["preset"] for r in results] == ["base", "improved"]

    def test_batch_carries_per_request_errors_in_slot(self, server):
        host, port = server
        status, _, body = post(
            host,
            port,
            "/batch",
            {
                "requests": [
                    {"source": SOURCE},
                    {"source": SOURCE, "preset": "nope"},
                ]
            },
        )
        assert status == 200
        results = body["results"]
        assert results[0]["status"] == "ok"
        assert results[1]["status"] == "error"

    def test_empty_batch_rejected(self, server):
        host, port = server
        status, _, _ = post(host, port, "/batch", {"requests": []})
        assert status == 400


class TestHttpPlumbing:
    def test_healthz(self, server):
        host, port = server
        status, body = get(host, port, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["schema_version"] == 1
        assert body["queue_capacity"] == ServerConfig().queue_size
        assert "result_cache" in body["engine"]

    def test_healthz_exposes_supervisor_state(self, server):
        host, port = server
        _, body = get(host, port, "/healthz")
        assert body["supervised"] is True
        supervisor = body["supervisor"]
        workers = supervisor["workers"]
        assert workers["configured"] >= 2
        assert 0 <= workers["live"] <= workers["configured"]
        for name in ("interactive", "batch"):
            bulkhead = supervisor["bulkheads"][name]
            assert bulkhead["queue_depth"] >= 0
            assert bulkhead["queue_capacity"] > 0
        # Every preset served so far has a breaker snapshot.
        for snapshot in supervisor["breakers"].values():
            assert snapshot["state"] in ("closed", "open", "half-open")

    def test_metrics_exposes_supervisor_counters(self, server):
        host, port = server
        # Ensure at least one request has dispatched to a worker.
        post(host, port, "/allocate", {"source": SOURCE, "name": "warm"})
        status, body = get(host, port, "/metrics")
        assert status == 200
        assert body["counters"].get("supervisor.dispatches", 0) > 0
        assert body["counters"].get("supervisor.spawns", 0) > 0

    def test_metrics(self, server):
        host, port = server
        status, body = get(host, port, "/metrics")
        assert status == 200
        assert "counters" in body
        assert body["counters"].get("serve.requests", 0) > 0

    def test_unknown_route_is_404(self, server):
        host, port = server
        status, _ = get(host, port, "/nope")
        assert status == 404

    def test_get_on_allocate_is_405(self, server):
        host, port = server
        status, _ = get(host, port, "/allocate")
        assert status == 405


class TestBackpressure:
    def test_full_queue_answers_429_with_retry_after(self):
        """Stall the engine; the bounded queue must throttle, not grow.

        Pinned to the in-process path (``supervised=False``): the test
        stalls the engine by monkeypatching ``submit_batch``, which
        only the thread-pool dispatcher calls.  The supervised path's
        backpressure is covered in ``test_supervisor.py``.
        """
        config = ServerConfig(
            port=0,
            queue_size=1,
            workers=1,
            batch_size=1,
            retry_after=0.25,
            supervised=False,
        )
        thread = ServerThread(config)
        host, port = thread.start()
        try:
            release = __import__("threading").Event()
            real = thread.server.engine.submit_batch

            def stalled(requests):
                release.wait(10)
                return real(requests)

            thread.server.engine.submit_batch = stalled

            async def flood():
                first = asyncio.ensure_future(
                    http_post_json(
                        host, port, "/allocate", {"source": SOURCE}
                    )
                )
                await asyncio.sleep(0.3)  # first job now stalls the worker
                # Concurrently fill the 1-slot queue and keep pushing:
                # the overflow must bounce with 429, not queue up.
                tasks = [
                    asyncio.ensure_future(
                        http_post_json(
                            host, port, "/allocate", {"source": SOURCE}
                        )
                    )
                    for _ in range(4)
                ]
                await asyncio.sleep(0.5)  # let the overflow bounce
                release.set()
                statuses = list(await asyncio.gather(*tasks))
                await first
                return statuses

            outcomes = asyncio.run(flood())
            throttled = [o for o in outcomes if o[0] == 429]
            assert throttled, f"expected a 429, got {[o[0] for o in outcomes]}"
            status, headers, body = throttled[0]
            assert headers["retry-after"] == "0.25"
            assert body["status"] == "throttled"
            assert body["schema_version"] == 1
        finally:
            thread.stop()

    def test_loadgen_under_pressure_loses_nothing(self):
        """The acceptance bar: a concurrent run against a tiny queue
        finishes with zero hard failures — 429s turn into retries —
        and the content cache demonstrably carries repeats."""
        report = run_loadgen(
            LoadgenConfig(requests=60, concurrency=8),
            spawn=True,
            server_config=ServerConfig(
                port=0, queue_size=2, workers=1, batch_size=4
            ),
        )
        assert report.ok == 60
        assert report.failed == 0
        assert report.cache_hits > 0
        data = report.as_dict()
        assert data["schema_version"] == 1
        assert data["p99_ms"] >= data["p50_ms"] > 0


class TestShutdown:
    def test_stop_is_prompt_and_clean(self):
        thread = ServerThread(ServerConfig(port=0))
        host, port = thread.start()
        status, _, body = post(host, port, "/allocate", {"source": SOURCE})
        assert status == 200
        started = time.time()
        thread.stop()
        assert time.time() - started < 10
