"""The circuit breaker state machine, pinned transition by transition.

Pure unit tests with a fake clock: the breaker's contract (consecutive
failures open it, cooldown admits exactly one probe, the probe's fate
decides) is what the supervisor's fast-refusal story rests on, so every
edge gets its own assertion.
"""

from repro.serve.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make(threshold=3, cooldown=10.0):
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=threshold, cooldown=cooldown, clock=clock)
    return breaker, clock


class TestClosed:
    def test_starts_closed_and_allows(self):
        breaker, _ = make()
        assert breaker.state == CLOSED
        allowed, retry_after = breaker.allow()
        assert allowed
        assert retry_after == 0.0

    def test_failures_below_threshold_stay_closed(self):
        breaker, _ = make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()[0]

    def test_success_resets_the_consecutive_count(self):
        breaker, _ = make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_threshold_must_be_positive(self):
        import pytest

        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


class TestOpen:
    def test_threshold_consecutive_failures_open(self):
        breaker, _ = make(threshold=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN

    def test_open_refuses_with_remaining_cooldown(self):
        breaker, clock = make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(4.0)
        allowed, retry_after = breaker.allow()
        assert not allowed
        assert retry_after == 6.0


class TestHalfOpen:
    def test_cooldown_elapsed_admits_exactly_one_probe(self):
        breaker, clock = make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()[0]  # the probe
        assert breaker.state == HALF_OPEN
        allowed, retry_after = breaker.allow()  # everyone else
        assert not allowed
        assert retry_after > 0.0

    def test_probe_success_closes(self):
        breaker, clock = make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()[0]
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()[0]

    def test_probe_failure_reopens_for_another_cooldown(self):
        breaker, clock = make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()[0]
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()[0]
        clock.advance(10.0)
        assert breaker.allow()[0]  # next probe after the new cooldown

    def test_release_probe_returns_the_slot(self):
        """An admitted probe that is never dispatched must not wedge
        the circuit half-open forever."""
        breaker, clock = make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()[0]
        breaker.release_probe()
        assert breaker.allow()[0]  # a new probe is admitted

    def test_transitions_are_counted(self):
        breaker, clock = make(threshold=1, cooldown=10.0)
        breaker.record_failure()  # closed -> open
        clock.advance(10.0)
        breaker.allow()  # open -> half-open
        breaker.record_success()  # half-open -> closed
        assert breaker.snapshot()["transitions"] == 3


class TestBreakerBoard:
    def test_keys_are_isolated(self):
        board = BreakerBoard(threshold=1, cooldown=10.0)
        board.record_failure("bad-preset")
        assert board.state("bad-preset") == OPEN
        assert board.state("good-preset") == CLOSED
        assert board.allow("good-preset")[0]
        assert not board.allow("bad-preset")[0]

    def test_states_snapshot_covers_every_key_seen(self):
        board = BreakerBoard(threshold=2)
        board.allow("a")
        board.record_failure("b")
        states = board.states()
        assert set(states) == {"a", "b"}
        assert states["b"]["consecutive_failures"] == 1

    def test_transition_callback_carries_the_key(self):
        seen = []
        board = BreakerBoard(
            threshold=1,
            cooldown=10.0,
            on_transition=lambda key, old, new: seen.append((key, old, new)),
        )
        board.record_failure("hot")
        assert seen == [("hot", CLOSED, OPEN)]
