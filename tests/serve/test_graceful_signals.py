"""Graceful shutdown signals for ``repro serve``.

The server always handled Ctrl-C; these tests pin down that SIGTERM —
what systemd, Docker and Kubernetes actually send — takes the same
drain path (stop accepting, answer queued work, flush connections)
instead of the default handler's instant death.  Real subprocesses:
signal disposition is process state, so in-process tests would only
test the test.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest


def _spawn_server():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--no-supervised", "--workers", "1"],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    # The banner line proves the listener is up before we signal.
    deadline = time.time() + 60
    banner = ""
    while time.time() < deadline:
        banner = proc.stdout.readline()
        if "listening on" in banner:
            break
    else:
        proc.kill()
        pytest.fail(f"server never announced itself: {banner!r}")
    return proc


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_signal_drains_and_exits_zero(signum):
    proc = _spawn_server()
    proc.send_signal(signum)
    try:
        output, _ = proc.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        pytest.fail(f"server did not exit after {signal.Signals(signum).name}")
    # Exit 0 with the shutdown banner: the graceful path ran.  A
    # default-disposition SIGTERM death would be returncode -15 and
    # print nothing.
    assert proc.returncode == 0, output
    assert "shutting down" in output
    assert signal.Signals(signum).name in output
