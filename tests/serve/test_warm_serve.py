"""Serving-layer warm paths: single-flight coalescing, worker warm start.

Satellite 1 (request coalescing) and the serving leg of the tentpole
(workers that warm-start from the artifact store on spawn and
respawn).  Coalescing is pinned deterministically on an *unstarted*
supervisor — jobs queue but never dispatch, so the leader is provably
in flight when the follower arrives — plus one live end-to-end run.
"""

from __future__ import annotations

import time

import pytest

from repro.chaos import ServiceFault, ServiceFaultPlan
from repro.engine import AllocationRequest
from repro.serve import AdmissionFull, Supervisor, SupervisorConfig
from repro.store import configure_store
from repro.workloads.registry import clear_compiled_cache

SOURCE = (
    "int out[2];\n"
    "int twice(int x) { return x * 2; }\n"
    "void main() {\n"
    "    int total = 0;\n"
    "    for (int i = 0; i < 10; i = i + 1) { total = total + twice(i); }\n"
    "    out[0] = total;\n"
    "}\n"
)


@pytest.fixture(autouse=True)
def _no_store_leaks():
    configure_store(None)
    clear_compiled_cache()
    yield
    configure_store(None)
    clear_compiled_cache()


def request(index: int = 0, **overrides) -> AllocationRequest:
    fields = dict(
        source=SOURCE.replace("x * 2", f"x * 2 + {index}"),
        name=f"req-{index}",
    )
    fields.update(overrides)
    return AllocationRequest(**fields)


def idle_supervisor(**overrides) -> Supervisor:
    """A supervisor whose dispatchers never run: queued jobs stay
    queued, so in-flight state is fully under the test's control."""
    defaults = dict(workers=1, queue_size=8, result_cache_size=0)
    defaults.update(overrides)
    return Supervisor(SupervisorConfig(**defaults))


OUTCOME = {
    "status_code": 200,
    "body": {
        "status": "ok",
        "cache": "miss",
        "preset": "improved",
        "report": {"overhead": 1.5},
        "telemetry": {"trace_id": "leader-trace", "spans": []},
    },
}


class TestCoalescing:
    def test_identical_request_rides_the_inflight_leader(self):
        supervisor = idle_supervisor()
        leader = supervisor.submit([request(0)])
        follower = supervisor.submit([request(0)])
        assert follower is not leader
        assert supervisor.counters["serve.coalesced"] == 1
        # Only the leader ever reached the queue.
        assert supervisor.bulkheads["interactive"].queue.qsize() == 1

        leader.set_result([OUTCOME])
        outcomes = follower.result(timeout=5)
        assert outcomes[0]["status_code"] == 200
        body = outcomes[0]["body"]
        assert body["coalesced"] is True
        assert body["report"] == {"overhead": 1.5}
        # The leader's telemetry never leaks into the follower.
        assert "telemetry" not in body
        # The leader's own result is untouched.
        assert "coalesced" not in leader.result(timeout=5)[0]["body"]

    def test_follower_gets_its_own_trace_span(self):
        supervisor = idle_supervisor()
        leader = supervisor.submit([request(0, trace_id="trace-leader")])
        follower = supervisor.submit([request(0, trace_id="trace-follower")])
        assert supervisor.counters["serve.coalesced"] == 1
        leader.set_result([OUTCOME])
        body = follower.result(timeout=5)[0]["body"]
        telemetry = body["telemetry"]
        assert telemetry["trace_id"] == "trace-follower"
        (span,) = telemetry["spans"]
        assert span["name"] == "coalesced-wait"
        assert span["trace_id"] == "trace-follower"
        assert span["attrs"]["layer"] == "supervisor"
        assert span["attrs"]["leader_job"]

    def test_distinct_programs_never_coalesce(self):
        supervisor = idle_supervisor()
        supervisor.submit([request(0)])
        supervisor.submit([request(1)])
        assert supervisor.counters.get("serve.coalesced", 0) == 0
        assert supervisor.bulkheads["interactive"].queue.qsize() == 2

    def test_coalesce_switch_disables_single_flight(self):
        # The chaos campaign turns coalescing off so its dispatch-
        # indexed fault plan sees every request.
        supervisor = idle_supervisor(coalesce=False)
        supervisor.submit([request(0)])
        supervisor.submit([request(0)])
        assert supervisor.counters.get("serve.coalesced", 0) == 0
        assert supervisor.bulkheads["interactive"].queue.qsize() == 2

    def test_trace_requests_never_coalesce(self):
        # Decision traces are per-request artifacts; sharing one
        # execution would hand request B request A's trace.
        supervisor = idle_supervisor()
        supervisor.submit([request(0, trace="twice")])
        supervisor.submit([request(0, trace="twice")])
        assert supervisor.counters.get("serve.coalesced", 0) == 0

    def test_leader_failure_propagates_to_followers(self):
        supervisor = idle_supervisor()
        leader = supervisor.submit([request(0)])
        follower = supervisor.submit([request(0)])
        leader.set_exception(RuntimeError("leader died"))
        with pytest.raises(RuntimeError, match="leader died"):
            follower.result(timeout=5)

    def test_completed_leader_is_deregistered(self):
        supervisor = idle_supervisor()
        leader = supervisor.submit([request(0)])
        leader.set_result([OUTCOME])
        # The key is free again: the next submit is a new leader, not
        # a follower of a finished job.
        second = supervisor.submit([request(0)])
        assert second is not leader
        assert supervisor.counters.get("serve.coalesced", 0) == 0
        assert supervisor._inflight != {}

    def test_admission_full_deregisters_the_leader(self):
        supervisor = idle_supervisor(queue_size=1)
        supervisor.submit([request(0)])  # fills the queue
        with pytest.raises(AdmissionFull):
            supervisor.submit([request(1)])  # distinct key, queue full
        # The refused job must not squat in the in-flight table.
        assert all(
            job.requests[0].name != "req-1"
            for job in supervisor._inflight.values()
        )

    def test_live_coalescing_end_to_end(self):
        """Against a real worker pool: an injected 400ms latency holds
        the leader in flight while an identical request arrives."""
        supervisor = Supervisor(
            SupervisorConfig(
                workers=1,
                queue_size=8,
                result_cache_size=0,
                respawn_backoff=0.01,
            )
        )
        supervisor.start()
        try:
            supervisor.arm_chaos(
                ServiceFaultPlan(
                    seed=0,
                    faults=[
                        ServiceFault(
                            action="latency", after=1, latency_ms=400.0
                        )
                    ],
                )
            )
            leader = supervisor.submit([request(0)])
            time.sleep(0.1)  # leader dispatched, sleeping in the worker
            follower = supervisor.submit([request(0)])
            lead_body = leader.result(timeout=60)[0]["body"]
            follow_body = follower.result(timeout=60)[0]["body"]
            assert supervisor.counters["serve.coalesced"] == 1
            assert supervisor.counters["supervisor.dispatches"] == 1
            assert "coalesced" not in lead_body
            assert follow_body["coalesced"] is True
            assert follow_body["report"] == lead_body["report"]
        finally:
            supervisor.stop()


class TestLoadgenWarmup:
    def test_warmup_runs_untimed_before_the_measured_phase(self):
        from repro.serve import LoadgenConfig, ServerConfig, run_loadgen

        report = run_loadgen(
            LoadgenConfig(requests=12, concurrency=4, warmup=6),
            spawn=True,
            server_config=ServerConfig(port=0, queue_size=16, workers=1),
        )
        # Warmup results are discarded: the report counts only the
        # measured phase, but records how much warmup preceded it.
        assert report.requests == 12
        assert report.ok == 12
        assert report.failed == 0
        assert report.warmup == 6
        assert report.as_dict()["warmup"] == 6
        # Two full cycles of the 3-program mix warmed every cache, so
        # the measured run is pure steady state: all hits.
        assert report.cache_hits == 12

    def test_warmup_defaults_to_zero(self):
        from repro.serve import LoadgenConfig

        assert LoadgenConfig().warmup == 0


class TestWorkerWarmStart:
    def test_fresh_workers_publish_warm_artifacts_before_traffic(
        self, tmp_path
    ):
        """A worker told to pre-warm a workload compiles it (and
        publishes the artifact) before its ready handshake."""
        store_root = tmp_path / "store"
        supervisor = Supervisor(
            SupervisorConfig(
                workers=1,
                queue_size=8,
                result_cache_size=0,
                respawn_backoff=0.01,
                store_dir=str(store_root),
                warm_workloads=("compress",),
            )
        )
        supervisor.start()
        try:
            outcomes = supervisor.submit(
                [request(0, source=None, workload="compress")]
            ).result(timeout=60)
            assert outcomes[0]["status_code"] == 200
            assert supervisor.counters["supervisor.warm_starts"] == 1
        finally:
            supervisor.stop()
        from repro.store import ArtifactStore

        stats = ArtifactStore(store_root).stats()
        assert stats["entries"] == 1
        assert stats["by_kind"] == {"program": 1}

    def test_respawned_worker_warm_starts_again(self, tmp_path):
        store_root = tmp_path / "store"
        supervisor = Supervisor(
            SupervisorConfig(
                workers=1,
                queue_size=8,
                result_cache_size=0,
                retries=2,
                respawn_backoff=0.01,
                store_dir=str(store_root),
                warm_workloads=("compress",),
            )
        )
        supervisor.start()
        try:
            supervisor.arm_chaos(
                ServiceFaultPlan(
                    seed=0, faults=[ServiceFault(action="kill", after=1)]
                )
            )
            outcomes = supervisor.submit([request(0)]).result(timeout=60)
            assert outcomes[0]["status_code"] == 200
            # Spawn + at least one respawn, each warm-started.
            assert supervisor.counters["supervisor.warm_starts"] >= 2
            assert supervisor.counters["supervisor.respawns"] >= 1
        finally:
            supervisor.stop()
        from repro.store import ArtifactStore

        # compress from the warm starts, plus the retried source
        # request's own program (the engine publishes those too).
        assert ArtifactStore(store_root).stats()["entries"] >= 1

    def test_no_store_means_no_warm_start_counter(self):
        supervisor = Supervisor(
            SupervisorConfig(workers=1, queue_size=8, result_cache_size=0)
        )
        supervisor.start()
        try:
            supervisor.submit([request(0)]).result(timeout=60)
            assert "supervisor.warm_starts" not in supervisor.counters
        finally:
            supervisor.stop()
