"""The supervised worker pool: real processes, real kills.

These tests spawn genuine worker subprocesses and murder them with the
service chaos hooks, pinning the recovery ladder end to end: retry on
a fresh worker, watchdog SIGKILL on hangs, recycling, circuit
breakers, bulkhead isolation, and — the part PR 7 exists for —
graceful shutdown that leaks neither connections nor processes.
"""

import asyncio
import os
import time

import pytest

from repro.chaos import ServiceFault, ServiceFaultPlan
from repro.engine import AllocationRequest
from repro.serve import (
    BATCH,
    AdmissionFull,
    BreakerOpen,
    ServerConfig,
    ServerThread,
    Supervisor,
    SupervisorConfig,
    SupervisorStopped,
    http_post_json,
)
from repro.serve.breaker import CLOSED, OPEN

SOURCE = (
    "int out[2];\n"
    "int twice(int x) { return x * 2; }\n"
    "void main() {\n"
    "    int total = 0;\n"
    "    for (int i = 0; i < 10; i = i + 1) { total = total + twice(i); }\n"
    "    out[0] = total;\n"
    "}\n"
)


def source_variant(index: int) -> str:
    """Distinct programs so the content caches never short-circuit."""
    return SOURCE.replace("x * 2", f"x * 2 + {index}")


def request(index: int = 0, **overrides) -> AllocationRequest:
    fields = dict(source=source_variant(index), name=f"req-{index}")
    fields.update(overrides)
    return AllocationRequest(**fields)


def make_supervisor(**overrides) -> Supervisor:
    defaults = dict(
        workers=1,
        batch_workers=1,
        queue_size=8,
        batch_queue_size=8,
        watchdog_seconds=10.0,
        retries=2,
        respawn_backoff=0.01,
        result_cache_size=0,
        worker_cache_size=8,
    )
    defaults.update(overrides)
    supervisor = Supervisor(SupervisorConfig(**defaults))
    supervisor.start()
    return supervisor


def arm(supervisor: Supervisor, *faults: ServiceFault) -> None:
    supervisor.arm_chaos(ServiceFaultPlan(seed=0, faults=list(faults)))


def assert_no_leaked_workers(supervisor: Supervisor) -> None:
    """Every PID the supervisor ever spawned must be dead."""
    assert supervisor.live_workers() == []
    for pid in supervisor.all_worker_pids:
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)


class TestHappyPath:
    def test_submit_returns_wire_outcomes(self):
        supervisor = make_supervisor()
        try:
            outcomes = supervisor.submit([request(0)]).result(timeout=60)
            assert len(outcomes) == 1
            assert outcomes[0]["status_code"] == 200
            body = outcomes[0]["body"]
            assert body["status"] == "ok"
            assert body["schema_version"] == 1
            assert "supervisor" not in body  # clean run: nothing to attribute
            assert supervisor.counters["supervisor.dispatches"] == 1
        finally:
            supervisor.stop()
        assert_no_leaked_workers(supervisor)

    def test_parent_cache_answers_repeats_without_dispatch(self):
        supervisor = make_supervisor(result_cache_size=8)
        try:
            first = supervisor.submit([request(0)]).result(timeout=60)
            second = supervisor.submit([request(0)]).result(timeout=60)
            assert first[0]["body"].get("cache") != "hit"
            assert second[0]["body"]["cache"] == "hit"
            assert supervisor.counters["supervisor.dispatches"] == 1
        finally:
            supervisor.stop()


class TestWorkerDeath:
    def test_killed_worker_retries_and_attributes_the_fault(self):
        supervisor = make_supervisor(retries=2)
        try:
            arm(supervisor, ServiceFault(action="kill", after=1))
            outcomes = supervisor.submit([request(0)]).result(timeout=60)
            assert outcomes[0]["status_code"] == 200
            note = outcomes[0]["body"]["supervisor"]
            assert note["degraded"] is False
            assert note["attempts"] == 2
            assert note["faults"][0]["reason"] == "crash"
            assert note["faults"][0]["chaos"]["action"] == "kill"
            assert supervisor.counters["supervisor.kills.crash"] == 1
            assert supervisor.counters["supervisor.retries"] == 1
            assert supervisor.counters["supervisor.respawns"] >= 1
        finally:
            supervisor.stop()
        assert_no_leaked_workers(supervisor)

    def test_hung_worker_dies_by_watchdog(self):
        supervisor = make_supervisor(watchdog_seconds=0.5, retries=1)
        try:
            arm(supervisor, ServiceFault(action="hang", after=1))
            outcomes = supervisor.submit([request(0)]).result(timeout=60)
            assert outcomes[0]["status_code"] == 200
            note = outcomes[0]["body"]["supervisor"]
            assert note["faults"][0]["reason"] == "watchdog"
            assert supervisor.counters["supervisor.kills.watchdog"] == 1
        finally:
            supervisor.stop()
        assert_no_leaked_workers(supervisor)

    def test_garbage_reply_is_fatal_and_retried(self):
        supervisor = make_supervisor(retries=1)
        try:
            arm(supervisor, ServiceFault(action="garbage", after=1))
            outcomes = supervisor.submit([request(0)]).result(timeout=60)
            assert outcomes[0]["status_code"] == 200
            note = outcomes[0]["body"]["supervisor"]
            assert note["faults"][0]["reason"] == "garbage"
            assert supervisor.counters["supervisor.kills.garbage"] == 1
        finally:
            supervisor.stop()
        assert_no_leaked_workers(supervisor)

    def test_retries_exhausted_degrades_to_inline_spillall(self):
        supervisor = make_supervisor(retries=0)
        try:
            arm(supervisor, ServiceFault(action="kill", after=1))
            outcomes = supervisor.submit(
                [request(0, preset="improved")]
            ).result(timeout=60)
            # Still a 200: the supervisor answered from its inline rung.
            assert outcomes[0]["status_code"] == 200
            body = outcomes[0]["body"]
            assert body["status"] == "ok"
            assert body["preset"] == "spillall"
            note = body["supervisor"]
            assert note["degraded"] is True
            assert note["rung"] == "spillall-inline"
            assert note["requested_preset"] == "improved"
            assert note["faults"][0]["reason"] == "crash"
            assert supervisor.counters["supervisor.degraded"] == 1
            assert len(supervisor.degraded_log) == 1
            assert supervisor.degraded_log[0]["faults"]
        finally:
            supervisor.stop()
        assert_no_leaked_workers(supervisor)


class TestRecycling:
    def test_workers_retire_after_the_job_quota(self):
        supervisor = make_supervisor(recycle_after=1)
        try:
            supervisor.submit([request(0)]).result(timeout=60)
            supervisor.submit([request(1)]).result(timeout=60)
            assert supervisor.counters["supervisor.recycled"] >= 1
            assert supervisor.counters["supervisor.recycled.requests"] >= 1
            pids = supervisor.all_worker_pids
            assert len(pids) >= 2
            assert len(set(pids)) == len(pids)
        finally:
            supervisor.stop()
        assert_no_leaked_workers(supervisor)


class TestBreaker:
    def test_worker_killing_preset_opens_then_recovers(self):
        supervisor = make_supervisor(
            retries=0, breaker_threshold=2, breaker_cooldown=0.4
        )
        try:
            arm(
                supervisor,
                ServiceFault(action="kill", after=1),
                ServiceFault(action="kill", after=2),
            )
            supervisor.submit([request(0)]).result(timeout=60)
            supervisor.submit([request(1)]).result(timeout=60)
            assert supervisor.breakers.state("improved") == OPEN
            with pytest.raises(BreakerOpen) as refusal:
                supervisor.submit([request(2)])
            assert refusal.value.status == 503
            assert refusal.value.retry_after > 0.0
            time.sleep(0.5)
            # Half-open: the probe dispatches for real and closes it.
            outcomes = supervisor.submit([request(3)]).result(timeout=60)
            assert outcomes[0]["status_code"] == 200
            assert supervisor.breakers.state("improved") == CLOSED
            states = [
                (entry["from"], entry["to"])
                for entry in supervisor.breaker_transitions
            ]
            assert ("closed", "open") in states
            assert ("half-open", "closed") in states
        finally:
            supervisor.stop()
        assert_no_leaked_workers(supervisor)


class TestBulkheads:
    def test_batch_overflow_never_touches_interactive(self):
        supervisor = make_supervisor(
            batch_queue_size=1, watchdog_seconds=1.0, retries=0
        )
        try:
            # Wedge the lone batch worker on a hang...
            arm(supervisor, ServiceFault(action="hang", after=1))
            wedged = supervisor.submit([request(0)], bulkhead=BATCH)
            time.sleep(0.2)  # dispatcher has taken it; queue is empty
            queued = supervisor.submit([request(1)], bulkhead=BATCH)
            # ...so the next batch job overflows the bulkhead...
            with pytest.raises(AdmissionFull) as refusal:
                supervisor.submit([request(2)], bulkhead=BATCH)
            assert refusal.value.bulkhead == BATCH
            assert refusal.value.status == 429
            # ...while interactive traffic is entirely unaffected.
            ok = supervisor.submit([request(3)]).result(timeout=60)
            assert ok[0]["status_code"] == 200
            # Let the wedged lane recover before teardown.
            assert wedged.result(timeout=60)[0]["status_code"] == 200
            assert queued.result(timeout=60)[0]["status_code"] == 200
        finally:
            supervisor.stop()
        assert_no_leaked_workers(supervisor)


class TestShutdown:
    def test_stop_fails_queued_jobs_cleanly_and_kills_stragglers(self):
        supervisor = make_supervisor(watchdog_seconds=30.0, retries=2)
        try:
            # Wedge the interactive worker, then queue behind it.
            arm(supervisor, ServiceFault(action="hang", after=1))
            wedged = supervisor.submit([request(0)])
            time.sleep(0.2)
            queued = [supervisor.submit([request(i)]) for i in range(1, 4)]
        finally:
            supervisor.stop(grace=0.5)
        for future in queued:
            with pytest.raises(SupervisorStopped):
                future.result(timeout=10)
        # The in-flight job lost its worker to the shutdown SIGKILL and
        # failed cleanly too — never hung, never leaked.
        with pytest.raises(SupervisorStopped):
            wedged.result(timeout=10)
        with pytest.raises(SupervisorStopped):
            supervisor.submit([request(9)])
        assert_no_leaked_workers(supervisor)


class TestServerGracefulShutdown:
    def test_shutdown_under_load_answers_every_connection(self):
        """Satellite 4: stop the server mid-burst.

        Every in-flight HTTP request must come back as a real response
        — 200 for work that completed, 503 JSON for work shed during
        shutdown — with no connection resets, and no worker subprocess
        may survive.
        """
        config = ServerConfig(
            port=0,
            supervised=True,
            workers=1,
            queue_size=32,
            default_deadline_ms=None,
            watchdog_seconds=10.0,
        )
        thread = ServerThread(config)
        host, port = thread.start()
        supervisor = thread.server.supervisor
        # The second dispatch hangs its worker, so the lone interactive
        # lane wedges and everything behind it is provably still queued
        # when the stop lands — shutdown must shed it cleanly.
        arm(supervisor, ServiceFault(action="hang", after=2))

        async def drive():
            tasks = [
                asyncio.ensure_future(
                    http_post_json(
                        host,
                        port,
                        "/allocate",
                        {"source": source_variant(i), "name": f"shed-{i}"},
                        timeout=30.0,
                    )
                )
                for i in range(24)
            ]
            await asyncio.sleep(0.3)  # first job done, second wedged
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, thread.stop)
            return await asyncio.gather(*tasks, return_exceptions=True)

        results = asyncio.run(drive())
        statuses = []
        for result in results:
            assert not isinstance(result, BaseException), (
                f"connection error during shutdown: {result!r}"
            )
            status, _, body = result
            statuses.append(status)
            assert status in (200, 503)
            assert body["schema_version"] == 1
            if status == 200:
                assert body["status"] == "ok"
            else:
                assert body["status"] == "unavailable"
        # At least the first job completed; the wedged lane forced the
        # rest to be shed — so both shutdown paths really ran.
        assert statuses.count(200) >= 1
        assert statuses.count(503) >= 1
        assert_no_leaked_workers(supervisor)
