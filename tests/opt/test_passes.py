"""Unit tests for the IR optimization passes."""

import pytest

from repro.ir import Branch, Const, Copy, Jump, verify_program
from repro.lang import compile_source
from repro.opt import (
    eliminate_dead_code,
    fold_constants,
    optimize_function,
    optimize_program,
    propagate_copies,
    simplify_cfg,
)
from repro.profile import run_program
from tests.conftest import assert_same_globals


def compile_main(body: str, prelude: str = "int out[8];"):
    program = compile_source(f"{prelude}\nvoid main() {{ {body} }}")
    return program, program.function("main")


def run_equiv(source: str, optimizer) -> None:
    """Optimize and assert observable behaviour is unchanged."""
    program = compile_source(source)
    before = run_program(program)
    for func in program.functions.values():
        optimizer(func)
    verify_program(program)
    after = run_program(program)
    assert_same_globals(before.globals_state, after.globals_state)


class TestConstantFolding:
    def test_folds_arithmetic_chain(self):
        program, func = compile_main("out[0] = 2 + 3 * 4;")
        changed = fold_constants(func)
        assert changed >= 2
        consts = [i.value for i in func.instructions() if isinstance(i, Const)]
        assert 14 in consts

    def test_folds_comparisons_and_logic(self):
        program, func = compile_main("out[0] = (2 < 3) && (4 != 4);")
        fold_constants(func)
        consts = [i.value for i in func.instructions() if isinstance(i, Const)]
        assert 0 in consts

    def test_preserves_division_by_zero(self):
        program, func = compile_main("int z = 0; out[0] = 7 / (z * 1);")
        optimize_function(func)
        # The faulting division must survive (DCE keeps it, folding
        # refuses it): running still raises.
        from repro.profile import InterpreterError

        with pytest.raises(InterpreterError):
            run_program(program)

    def test_algebraic_identities(self):
        program, func = compile_main(
            "int x = out[0]; out[1] = x + 0; out[2] = x * 1; out[3] = x * 0;"
        )
        changed = fold_constants(func)
        assert changed >= 3

    def test_float_mul_zero_not_folded(self):
        # -0.0 / NaN semantics: x * 0.0 must stay.
        source = "float f[2];\nvoid main() { float x = f[0]; f[1] = x * 0.0; }"
        program = compile_source(source)
        func = program.function("main")
        before = func.size()
        fold_constants(func)
        assert func.size() == before

    def test_semantics_preserved(self):
        run_equiv(
            """
            int out[4];
            void main() {
                int a = 6 * 7;
                out[0] = a + 2 - 2;
                out[1] = a % 5;
                out[2] = -(3 - 8);
            }
            """,
            fold_constants,
        )


class TestCopyPropagation:
    def test_straightline_chain(self):
        program, func = compile_main(
            "int a = out[0]; int b = a; int c = b; out[1] = c;"
        )
        changed = propagate_copies(func)
        assert changed >= 1

    def test_redefinition_blocks_propagation(self):
        run_equiv(
            """
            int out[3];
            void main() {
                int a = 5;
                int b = a;
                a = 9;
                out[0] = b;
                out[1] = a;
            }
            """,
            propagate_copies,
        )

    def test_source_redefinition_kills_mapping(self):
        program, func = compile_main(
            "int a = 1; int b = a; a = 2; out[0] = b + a;"
        )
        before = run_program(compile_source(
            "int out[8];\nvoid main() { int a = 1; int b = a; a = 2; out[0] = b + a; }"
        ))
        propagate_copies(func)
        after = run_program(program)
        assert before.globals_state == after.globals_state


class TestDeadCodeElimination:
    def test_removes_unused_results(self):
        program, func = compile_main("int dead = 3 * 3; out[0] = 1;")
        removed = eliminate_dead_code(func)
        assert removed >= 1

    def test_keeps_stores_and_calls(self):
        source = """
        int g[2];
        int bump() { g[0] = g[0] + 1; return 0; }
        void main() { int unused = bump(); g[1] = 5; }
        """
        program = compile_source(source)
        func = program.function("main")
        eliminate_dead_code(func)
        result = run_program(program)
        assert result.globals_state["g"] == [1, 5]

    def test_cascading_death(self):
        # b depends on a; both die together across iterations.
        program, func = compile_main("int a = out[0] + 1; int b = a * 2; out[1] = 7;")
        size_before = func.size()
        removed = eliminate_dead_code(func)
        assert removed >= 3  # a chain of consts/ops/copies
        assert func.size() < size_before

    def test_loop_carried_values_kept(self):
        run_equiv(
            """
            int out[1];
            void main() {
                int acc = 0;
                for (int i = 0; i < 5; i = i + 1) { acc = acc + i; }
                out[0] = acc;
            }
            """,
            eliminate_dead_code,
        )


class TestSimplifyCFG:
    def test_constant_branch_becomes_jump(self):
        program, func = compile_main("if (1) { out[0] = 5; } else { out[0] = 9; }")
        changed = simplify_cfg(func)
        assert changed > 0
        assert not any(
            isinstance(b.terminator, Branch) for b in func.blocks
        )
        assert run_program(program).globals_state["out"][0] == 5

    def test_jump_threading(self):
        # while-lowering produces a jump to a header; after constant
        # folding a trivial chain appears and is threaded.
        program, func = compile_main("out[0] = 3; { } { } out[1] = 4;")
        simplify_cfg(func)
        assert run_program(program).globals_state["out"][:2] == [3, 4]

    def test_block_merging_reduces_blocks(self):
        program, func = compile_main(
            "if (out[0] > 0) { out[1] = 1; } out[2] = 2;"
        )
        blocks_before = len(func.blocks)
        simplify_cfg(func)
        assert len(func.blocks) <= blocks_before

    def test_entry_never_merged_away(self):
        program, func = compile_main("out[0] = 1;")
        simplify_cfg(func)
        assert func.blocks[0] is func.entry


class TestPipeline:
    def test_fixed_point_and_verification(self):
        source = """
        int out[2];
        int helper(int x) { return x * 1 + 0; }
        void main() {
            int a = 2 + 3;
            int b = a;
            if (b > 100) { out[0] = helper(1); } else { out[0] = helper(b); }
            int dead = a * b;
        }
        """
        program = compile_source(source)
        before = run_program(program)
        total = optimize_program(program, verify=True)
        assert total > 0
        after = run_program(program)
        assert_same_globals(before.globals_state, after.globals_state)
        # Second run finds nothing new.
        assert optimize_program(program) == 0

    def test_shrinks_dynamic_instruction_count(self):
        source = """
        int out[1];
        void main() {
            int s = 0;
            for (int i = 0; i < 50; i = i + 1) {
                int k = 4 * 1;
                s = s + i * k + 0;
            }
            out[0] = s;
        }
        """
        program = compile_source(source)
        before = run_program(program).instructions_executed
        optimize_program(program)
        after = run_program(program).instructions_executed
        assert after < before
