"""Property tests: the optimizer never changes observable behaviour,
and optimized programs still allocate and execute correctly."""

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.ir import verify_program
from repro.machine import RegisterConfig, register_file
from repro.opt import optimize_program
from repro.profile import InterpreterError, run_allocated, run_program


def run_bounded(program, fuel=3_000_000):
    """Skip (rather than fail on) over-budget generated programs."""
    try:
        return run_program(program, fuel=fuel)
    except InterpreterError as error:
        assume("fuel" not in str(error))
        raise
from repro.regalloc import AllocatorOptions, allocate_program
from repro.workloads.generator import random_program
from tests.conftest import assert_same_globals

RELAXED = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@given(seed=st.integers(min_value=0, max_value=10_000))
@RELAXED
def test_optimizer_preserves_semantics(seed):
    program = random_program(seed)
    before = run_bounded(program)
    optimize_program(program, verify=True)
    verify_program(program)
    after = run_program(program, fuel=3_000_000)
    assert_same_globals(before.globals_state, after.globals_state)


@given(seed=st.integers(min_value=0, max_value=10_000))
@RELAXED
def test_optimizer_never_grows_dynamic_count(seed):
    program = random_program(seed)
    before = run_bounded(program).instructions_executed
    optimize_program(program)
    after = run_program(program, fuel=3_000_000).instructions_executed
    assert after <= before


@given(seed=st.integers(min_value=0, max_value=10_000))
@RELAXED
def test_optimized_programs_allocate_correctly(seed):
    program = random_program(seed)
    optimize_program(program)
    base = run_bounded(program)
    allocation = allocate_program(
        program,
        register_file(RegisterConfig(4, 3, 1, 1)),
        AllocatorOptions.improved_chaitin(),
    )
    mech = run_allocated(allocation, fuel=30_000_000)
    assert_same_globals(base.globals_state, mech.globals_state)


@given(seed=st.integers(min_value=0, max_value=10_000))
@RELAXED
def test_optimizer_idempotent(seed):
    program = random_program(seed)
    optimize_program(program)
    assert optimize_program(program) == 0
