"""Edge cases for CFG simplification (regression net for the merger)."""

from repro.ir import Branch, Jump, verify_program
from repro.lang import compile_source
from repro.opt import simplify_cfg
from repro.profile import run_program
from tests.conftest import assert_same_globals


def check(source: str):
    program = compile_source(source)
    before = run_program(program)
    for func in program.functions.values():
        simplify_cfg(func)
    verify_program(program)
    after = run_program(program)
    assert_same_globals(before.globals_state, after.globals_state)
    return program


class TestMergerEdges:
    def test_chain_of_merges(self):
        # Sequential blocks created by nested empty scopes merge into
        # one without dangling references (regression: a merged-away
        # block used to be reprocessed).
        program = check(
            """
            int out[2];
            void main() {
                out[0] = 1;
                { { { out[1] = 2; } } }
                int tail = out[0] + out[1];
                out[0] = tail;
            }
            """
        )
        func = program.function("main")
        assert len(func.blocks) == 1

    def test_loop_back_edge_not_merged(self):
        program = check(
            """
            int out[1];
            void main() {
                int s = 0;
                for (int i = 0; i < 5; i = i + 1) { s = s + i; }
                out[0] = s;
            }
            """
        )
        func = program.function("main")
        # The loop structure must survive (header has two predecessors).
        assert len(func.blocks) >= 3

    def test_self_loop_resists_threading(self):
        # while(1){} shaped cycles must not send the jump threader into
        # an infinite chase.
        program = compile_source(
            """
            int out[1];
            void main() {
                int i = 0;
                while (i < 3) {
                    i = i + 1;
                }
                out[0] = i;
            }
            """
        )
        for func in program.functions.values():
            simplify_cfg(func)
        verify_program(program)
        assert run_program(program).globals_state["out"] == [3]

    def test_both_branch_arms_same_target_collapses(self):
        program = check(
            """
            int out[1];
            void main() {
                if (out[0] > 0) { } else { }
                out[0] = 7;
            }
            """
        )
        func = program.function("main")
        assert not any(isinstance(b.terminator, Branch) for b in func.blocks)

    def test_constant_false_branch(self):
        program = check(
            """
            int out[1];
            void main() {
                out[0] = 1;
                if (0) { out[0] = 99; }
            }
            """
        )
        assert run_program(program).globals_state["out"] == [1]

    def test_dead_then_branch_removed(self):
        program = check(
            """
            int out[1];
            void main() {
                if (1) { out[0] = 5; } else { out[0] = 6; }
            }
            """
        )
        func = program.function("main")
        # The untaken arm is unreachable and dropped.
        assert all(
            not isinstance(b.terminator, Branch) for b in func.blocks
        )
