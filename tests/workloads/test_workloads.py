"""Tests for the 14 SPEC92 stand-in workloads."""

import pytest

from repro.ir import Call
from repro.workloads import compile_workload, get_workload, workload_names

EXPECTED = {
    "alvinn",
    "compress",
    "doduc",
    "ear",
    "eqntott",
    "espresso",
    "fpppp",
    "gcc",
    "li",
    "matrix300",
    "nasa7",
    "sc",
    "spice",
    "tomcatv",
}


def has_calls(program) -> bool:
    return any(
        isinstance(instr, Call)
        for func in program.functions.values()
        for instr in func.instructions()
    )


class TestRegistry:
    def test_all_fourteen_present(self):
        assert set(workload_names()) == EXPECTED

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("specmark2000")

    def test_compile_workload_cached(self):
        a = compile_workload("gcc")
        b = compile_workload("gcc")
        assert a is b


@pytest.mark.parametrize("name", sorted(EXPECTED))
class TestEveryWorkload:
    def test_compiles_runs_and_profiles(self, name):
        compiled = compile_workload(name)
        assert compiled.baseline.instructions_executed > 10_000
        assert compiled.profile.entries("main") == 1

    def test_produces_observable_output(self, name):
        compiled = compile_workload(name)
        state = compiled.baseline.globals_state
        out_arrays = [k for k in state if k in ("out", "fout")]
        assert out_arrays, f"{name} must write a checksum array"
        assert any(
            any(v != 0 and v != 0.0 for v in state[k]) for k in out_arrays
        ), f"{name} produced all-zero output"

    def test_deterministic(self, name):
        from repro.profile import run_program

        compiled = compile_workload(name)
        second = run_program(compiled.program)
        assert second.globals_state == compiled.baseline.globals_state


class TestStructuralTraits:
    def test_tomcatv_has_no_calls(self):
        compiled = compile_workload("tomcatv")
        assert not has_calls(compiled.program)
        assert len(compiled.program.functions) == 1

    def test_hot_call_programs_have_calls(self):
        for name in ("ear", "eqntott", "sc", "li", "matrix300"):
            assert has_calls(compile_workload(name).program), name

    def test_li_recurses(self):
        compiled = compile_workload("li")
        func = compiled.program.function("eval_node")
        self_calls = [
            i
            for i in func.instructions()
            if isinstance(i, Call) and i.callee == "eval_node"
        ]
        assert self_calls

    def test_fpppp_has_wide_blocks(self):
        compiled = compile_workload("fpppp")
        kernel = compiled.program.function("kernel")
        assert max(len(b) for b in kernel.blocks) > 80

    def test_dynamic_weights_derive_from_profile(self):
        compiled = compile_workload("eqntott")
        func = compiled.program.function("cmppt")
        weights = compiled.dynamic_weights(func)
        assert weights.entry_weight > 100  # called from the sort inner loop

    def test_static_weights_available(self):
        compiled = compile_workload("eqntott")
        func = compiled.program.function("sort_terms")
        weights = compiled.static_weights(func)
        assert weights.entry_weight == 1.0
