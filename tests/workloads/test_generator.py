"""Dedicated tests for the random-program generator."""

import pytest

from repro.ir import verify_program
from repro.profile import run_program
from repro.workloads.generator import random_program, random_source


class TestGeneratorGuarantees:
    def test_same_seed_same_source(self):
        assert random_source(123) == random_source(123)

    def test_different_seeds_differ(self):
        sources = {random_source(seed) for seed in range(8)}
        assert len(sources) > 1

    @pytest.mark.parametrize("seed", range(20))
    def test_generated_programs_verify(self, seed):
        verify_program(random_program(seed))

    @pytest.mark.parametrize("seed", range(0, 40, 7))
    def test_generated_programs_terminate(self, seed):
        # A generous but finite fuel; the generator's loops are counted
        # for-loops with constant bounds, so termination is structural.
        run_program(random_program(seed), fuel=50_000_000)

    def test_main_always_present(self):
        for seed in range(5):
            program = random_program(seed)
            assert "main" in program.functions
            assert program.function("main").return_type is None

    def test_call_graph_is_acyclic(self):
        from repro.analysis.callgraph import build_call_graph

        for seed in range(10):
            graph = build_call_graph(random_program(seed))
            assert not any(graph.is_recursive(f) for f in graph.callees)

    def test_size_knobs_respected(self):
        small = random_source(7, max_funcs=1, max_stmts=2)
        large = random_source(7, max_funcs=4, max_stmts=10)
        assert len(large) > len(small)

    def test_checksum_written_for_int_globals(self):
        # main checksums every int global into slot 0, making outputs
        # observable for the equivalence oracle.
        for seed in range(5):
            program = random_program(seed)
            int_globals = [
                g for g in program.globals.values() if g.vtype.is_int
            ]
            if not int_globals:
                continue
            result = run_program(program, fuel=50_000_000)
            # At least runs; slot 0 holds the checksum (possibly 0).
            assert result.globals_state[int_globals[0].name] is not None
