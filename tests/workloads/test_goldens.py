"""Golden-output regression tests for the 14 workloads.

The experiments in EXPERIMENTS.md were measured against these exact
programs; an accidental edit to a workload source would silently shift
every reported number.  These goldens pin the observable outputs (and
hence the profiles) the measurements rest on.  If you change a
workload *deliberately*, update the goldens and regenerate
benchmarks/results/ and EXPERIMENTS.md.
"""

import math

import pytest

from repro.workloads import compile_workload

#: workload -> (checksum array, first four expected values)
GOLDENS = {
    "alvinn": ("fout", [0.632362, -0.164354, -0.161899, 0.52308]),
    "compress": ("out", [653407, 186, 441, 78205]),
    "doduc": ("fout", [15225.302388, 45.783773, 1.216433, 0.0]),
    "ear": ("fout", [239.833797, 4.070515, 1.636844, 322.29531]),
    "eqntott": ("out", [734192, 87, 154, 82409]),
    "espresso": ("out", [158107, 10, 0, 0]),
    "fpppp": ("fout", [-13.073179, 0.465721, -2.483345, 0.0]),
    "gcc": ("out", [1120, 306, 0, 0]),
    "li": ("out", [3040, 511, 0, 0]),
    "matrix300": ("fout", [6.44, 0.2772, 0.4774, 0.0]),
    "nasa7": ("fout", [-7607.968935, 4798424.739525, -34.624544, -1.344762]),
    "sc": ("out", [898338, 70, 84, 0]),
    "spice": ("fout", [0.309596, 0.000803, 13.0, 0.0]),
    "tomcatv": ("fout", [0.021973, 0.001831, 6.5, 1.625]),
}


@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_workload_golden_output(name):
    array, expected = GOLDENS[name]
    compiled = compile_workload(name)
    actual = compiled.baseline.globals_state[array][:4]
    for got, want in zip(actual, expected):
        if isinstance(want, float):
            assert math.isclose(got, want, rel_tol=1e-5, abs_tol=1e-6), (
                f"{name}.{array}: {actual} != {expected}"
            )
        else:
            assert got == want, f"{name}.{array}: {actual} != {expected}"


def test_golden_table_is_complete():
    from repro.workloads import workload_names

    assert set(GOLDENS) == set(workload_names())
