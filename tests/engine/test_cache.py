"""Content-addressed result caching: keying, LRU bound, counters.

The satellite contract, spelled out: the cache keys on the *parsed
program* (hash of the canonical IR printing), so a whitespace-only
source edit still hits, while changing the preset, the register
configuration or any flag misses — and the LRU bound actually evicts.
"""

import pytest

from repro.engine import (
    AllocationEngine,
    AllocationRequest,
    ContentCache,
    fingerprint_text,
    result_key,
)
from repro.machine import RegisterConfig
from repro.regalloc import PRESETS

SOURCE = (
    "int out[2];\n"
    "int twice(int x) { return x * 2; }\n"
    "void main() {\n"
    "    int total = 0;\n"
    "    for (int i = 0; i < 10; i = i + 1) { total = total + twice(i); }\n"
    "    out[0] = total;\n"
    "}\n"
)

#: The same program, reformatted: extra blank lines, indentation and
#: spacing only.  Parses to byte-identical IR.
SOURCE_WS = (
    "int   out[2];\n\n\n"
    "int twice( int x )   { return x * 2; }\n\n"
    "void main() {\n"
    "        int total = 0;\n"
    "        for (int i = 0; i < 10; i = i + 1) {\n"
    "                total = total + twice(i);\n"
    "        }\n"
    "        out[0] = total;\n"
    "}\n"
)


def request(**kwargs) -> AllocationRequest:
    kwargs.setdefault("source", SOURCE)
    kwargs.setdefault("name", "prog")
    return AllocationRequest(**kwargs)


class TestContentCacheUnit:
    def test_get_put_and_counters(self):
        cache = ContentCache(maxsize=4, metric_prefix="test.cache")
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.stats()["hit_rate"] == 0.5

    def test_peek_counts_nothing(self):
        cache = ContentCache(maxsize=4, metric_prefix="test.cache")
        cache.put("a", 1)
        assert cache.peek("a") == 1
        assert cache.peek("b") is None
        assert cache.hits == 0 and cache.misses == 0

    def test_lru_evicts_least_recently_used(self):
        cache = ContentCache(maxsize=2, metric_prefix="test.cache")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh 'a'; 'b' is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_rejects_senseless_bound(self):
        with pytest.raises(ValueError):
            ContentCache(maxsize=0)

    def test_result_key_sorts_flags(self):
        key_a = result_key("f", None, None, "dynamic", ("resilient", "optimize"))
        key_b = result_key("f", None, None, "dynamic", ("optimize", "resilient"))
        assert key_a == key_b

    def test_fingerprint_text_is_stable(self):
        assert fingerprint_text("abc") == fingerprint_text("abc")
        assert fingerprint_text("abc") != fingerprint_text("abd")


class TestEngineResultCaching:
    def test_same_source_hits(self):
        engine = AllocationEngine()
        first = engine.submit(request())
        second = engine.submit(request())
        assert not first.cache_hit
        assert second.cache_hit
        assert second.report == first.report

    def test_whitespace_only_change_hits(self):
        """The key is the parsed IR's hash, not the source text's."""
        engine = AllocationEngine()
        first = engine.submit(request(source=SOURCE))
        second = engine.submit(request(source=SOURCE_WS))
        assert second.fingerprint == first.fingerprint
        assert second.cache_hit
        # The *program* cache (text-keyed) correctly missed: the
        # reformatted source had to be compiled to prove IR equality.
        assert engine.stats()["program_cache"]["misses"] == 2

    def test_preset_change_misses(self):
        engine = AllocationEngine()
        engine.submit(request(preset="improved"))
        other = engine.submit(request(preset="base"))
        assert not other.cache_hit

    def test_config_change_misses(self):
        engine = AllocationEngine()
        engine.submit(request(config=RegisterConfig(6, 4, 2, 2)))
        other = engine.submit(request(config=RegisterConfig(4, 2, 1, 1)))
        assert not other.cache_hit

    def test_info_change_misses(self):
        engine = AllocationEngine()
        engine.submit(request(info="dynamic"))
        other = engine.submit(request(info="static"))
        assert not other.cache_hit

    def test_flag_change_misses(self):
        engine = AllocationEngine()
        engine.submit(request())
        resilient = engine.submit(request(resilient=True))
        assert not resilient.cache_hit

    def test_lru_bound_evicts_results(self):
        engine = AllocationEngine(cache_size=1)
        engine.submit(request(preset="improved"))
        engine.submit(request(preset="base"))  # evicts the first entry
        again = engine.submit(request(preset="improved"))
        assert not again.cache_hit
        assert engine.results.evictions >= 1

    def test_trace_requests_bypass_cache_read(self):
        """Trace events are per-run artifacts; a cached result has
        none, so traced requests recompute (but still store)."""
        engine = AllocationEngine()
        engine.submit(request())
        traced = engine.submit(request(trace=True))
        assert not traced.cache_hit
        assert traced.trace_events

    def test_every_preset_produces_a_distinct_entry(self):
        engine = AllocationEngine()
        for name in sorted(PRESETS):
            result = engine.submit(request(preset=name))
            assert not result.cache_hit
        assert len(engine.results) == len(PRESETS)
