"""The engine facade: one entry point, same decisions as the pipeline.

The refactor's acceptance bar is that the CLI and the server share
*one* allocation pipeline — so the engine's output must be
indistinguishable from calling :func:`allocate_program` directly:
byte-identical decision traces, same overhead, same report.
"""

import pytest

from repro.engine import (
    AllocationEngine,
    AllocationRequest,
    RequestError,
)
from repro.ir import format_program
from repro.lang import compile_source
from repro.machine import RegisterConfig, register_file
from repro.obs import Tracer
from repro.profile import run_program
from repro.regalloc import PRESETS, allocate_program

SOURCE = (
    "int out[2];\n"
    "int twice(int x) { return x * 2; }\n"
    "void main() {\n"
    "    int total = 0;\n"
    "    for (int i = 0; i < 10; i = i + 1) { total = total + twice(i); }\n"
    "    out[0] = total;\n"
    "}\n"
)

CFG = RegisterConfig(6, 4, 2, 2)


class TestRequestValidation:
    def test_requires_exactly_one_program(self):
        engine = AllocationEngine()
        with pytest.raises(RequestError):
            engine.submit(AllocationRequest())
        with pytest.raises(RequestError):
            engine.submit(
                AllocationRequest(source="int main(){return 0;}", workload="li")
            )

    def test_unknown_preset_rejected(self):
        engine = AllocationEngine()
        with pytest.raises(RequestError, match="unknown preset"):
            engine.submit(AllocationRequest(source=SOURCE, preset="nope"))

    def test_bad_info_rejected(self):
        engine = AllocationEngine()
        with pytest.raises(RequestError, match="info must be"):
            engine.submit(AllocationRequest(source=SOURCE, info="oracle"))

    def test_broken_source_is_a_request_error(self):
        engine = AllocationEngine()
        with pytest.raises(RequestError):
            engine.submit(AllocationRequest(source="int main( {"))

    def test_unknown_workload_is_a_request_error(self):
        engine = AllocationEngine()
        with pytest.raises(RequestError):
            engine.submit(AllocationRequest(workload="spec2095"))


class TestPipelineEquivalence:
    def test_trace_byte_identical_to_direct_pipeline(self):
        """engine.submit == allocate_program, decision for decision."""
        program = compile_source(SOURCE, name="prog")
        weights = run_program(program, fuel=50_000_000).profile.weights
        tracer = Tracer()
        allocate_program(
            program,
            register_file(CFG),
            PRESETS["improved"](),
            weights,
            tracer=tracer,
        )
        direct = [event.to_json() for event in tracer.events]

        engine = AllocationEngine()
        result = engine.submit(
            AllocationRequest(source=SOURCE, trace=True, name="prog")
        )
        via_engine = [event.to_json() for event in result.trace_events]
        assert via_engine == direct

    def test_ir_and_source_routes_agree(self):
        """Submitting the compiled IR text reproduces the source run.

        ``parse_ir`` renumbers virtual registers, so the IR route's
        fingerprint differs from the source route's — but the
        allocation itself must not care about numbering.
        """
        engine = AllocationEngine()
        from_source = engine.submit(
            AllocationRequest(source=SOURCE, name="prog")
        )
        ir_text = format_program(compile_source(SOURCE, name="prog"))
        from_ir = engine.submit(AllocationRequest(ir=ir_text, name="prog"))
        assert from_ir.report["overhead"] == from_source.report["overhead"]
        # The IR route itself is content-stable: resubmitting the
        # normalized printing shares one fingerprint (and the entry).
        again = engine.submit(AllocationRequest(ir=ir_text, name="prog"))
        assert again.fingerprint == from_ir.fingerprint
        assert again.cache_hit

    def test_workload_route_uses_registry(self):
        engine = AllocationEngine()
        result = engine.submit(AllocationRequest(workload="compress"))
        assert result.report["overhead"]["total"] >= 0

    def test_report_carries_schema_version(self):
        engine = AllocationEngine()
        result = engine.submit(AllocationRequest(source=SOURCE))
        assert result.report["schema_version"] == 1


class TestSubmitBatch:
    def test_results_in_request_order(self):
        engine = AllocationEngine()
        requests = [
            AllocationRequest(source=SOURCE, preset="base", name="prog"),
            AllocationRequest(workload="compress"),
            AllocationRequest(source=SOURCE, preset="improved", name="prog"),
        ]
        results = engine.submit_batch(requests)
        # Order is positional, whatever the grouping did internally.
        assert results[0].preset == "base"
        assert results[2].preset == "improved"
        assert results[1].report["overhead"]["total"] >= 0

    def test_same_program_compiles_once(self):
        engine = AllocationEngine()
        requests = [
            AllocationRequest(source=SOURCE, preset=name, name="prog")
            for name in ("base", "improved", "priority")
        ]
        engine.submit_batch(requests)
        stats = engine.stats()["program_cache"]
        assert stats["misses"] == 1
        assert stats["hits"] == 2

    def test_errors_travel_in_slot(self):
        engine = AllocationEngine()
        requests = [
            AllocationRequest(source=SOURCE, name="prog"),
            AllocationRequest(source=SOURCE, preset="nope", name="prog"),
            AllocationRequest(source=SOURCE, preset="base", name="prog"),
        ]
        results = engine.submit_batch(requests)
        assert results[0].preset == "improved"
        assert isinstance(results[1], RequestError)
        assert results[2].preset == "base"


class TestBudgets:
    def test_deadline_exceeded_raises_without_resilience(self):
        from repro.regalloc.budget import BudgetExceeded

        engine = AllocationEngine()
        with pytest.raises(BudgetExceeded):
            engine.submit(
                AllocationRequest(source=SOURCE, deadline_seconds=1e-9)
            )

    def test_deadline_exceeded_degrades_with_resilience(self):
        engine = AllocationEngine()
        result = engine.submit(
            AllocationRequest(
                source=SOURCE, deadline_seconds=1e-9, resilient=True
            )
        )
        assert result.allocation.resilience is not None
        assert result.allocation.resilience.degraded
