"""Unit tests for the IR printer."""

from repro.ir import (
    FLOAT,
    INT,
    BinaryOpcode,
    Function,
    GlobalArray,
    IRBuilder,
    Program,
    format_block,
    format_function,
    format_global,
    format_program,
)


def sample_function():
    func = Function("sample", param_types=[INT], return_type=INT,
                    param_names=["n"])
    builder = IRBuilder(func)
    builder.start_block("entry")
    two = builder.const(2, INT)
    result = builder.binop(BinaryOpcode.MUL, func.params[0], two, name="r")
    builder.ret(result)
    return func


class TestFormatting:
    def test_function_header(self):
        text = format_function(sample_function())
        assert text.startswith("func @sample(%i0:n) -> int {")
        assert text.endswith("}")

    def test_void_return_type(self):
        func = Function("v", return_type=None)
        IRBuilder(func).start_block()
        func.entry.instrs.append(__import__("repro.ir", fromlist=["Ret"]).Ret())
        assert "-> void" in format_function(func)

    def test_block_lists_instructions(self):
        func = sample_function()
        text = format_block(func.entry)
        assert text.splitlines()[0] == "entry0:"
        assert "const 2" in text
        assert "mul" in text
        assert "ret" in text

    def test_instructions_indented(self):
        func = sample_function()
        for line in format_block(func.entry).splitlines()[1:]:
            assert line.startswith("    ")

    def test_global_without_init(self):
        assert format_global(GlobalArray("g", INT, 8)) == "global @g[8]:int"

    def test_global_with_init(self):
        text = format_global(GlobalArray("w", FLOAT, 4, init=[0.5, -1.0]))
        assert text == "global @w[4]:float = {0.5, -1.0}"

    def test_program_joins_sections(self):
        program = Program("p")
        program.add_global(GlobalArray("g", INT, 2))
        program.add_function(sample_function())
        text = format_program(program)
        assert text.index("global @g") < text.index("func @sample")
        assert "\n\n" in text

    def test_named_registers_rendered(self):
        text = format_function(sample_function())
        assert "%i0:n" in text
        assert ":r" in text
