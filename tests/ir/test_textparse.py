"""Tests for the textual-IR parser (printer round trip)."""

import pytest

from repro.ir import format_program, verify_program
from repro.ir.textparse import IRParseError, parse_ir
from repro.lang import compile_source
from repro.profile import run_program
from repro.workloads import compile_workload, workload_names
from tests.conftest import SMALL_CALL_SOURCE, assert_same_globals


def roundtrip(program):
    """Parse the printed form; check the printer/parser fixed point.

    Register ids are renumbered to first-appearance order on parse, so
    the original text is only reproduced exactly once normalized —
    format(parse(text)) is the fixed point.
    """
    text = format_program(program)
    reparsed = parse_ir(text)
    normalized = format_program(reparsed)
    assert format_program(parse_ir(normalized)) == normalized
    return reparsed


class TestRoundTrip:
    def test_small_program(self):
        program = compile_source(SMALL_CALL_SOURCE)
        reparsed = roundtrip(program)
        verify_program(reparsed)
        before = run_program(program)
        after = run_program(reparsed)
        assert_same_globals(before.globals_state, after.globals_state)

    @pytest.mark.parametrize("name", ["eqntott", "li", "tomcatv", "spice"])
    def test_workloads_roundtrip(self, name):
        compiled = compile_workload(name)
        reparsed = roundtrip(compiled.program)
        verify_program(reparsed)
        result = run_program(reparsed)
        assert_same_globals(
            compiled.baseline.globals_state, result.globals_state
        )

    def test_global_initializers_preserved(self):
        program = compile_source(
            "float w[4] = {0.5, -1.5};\nint out[2];\nvoid main() { out[0] = 1; }"
        )
        reparsed = roundtrip(program)
        assert reparsed.globals["w"].init == [0.5, -1.5]
        assert reparsed.globals["out"].init is None

    def test_parsed_programs_allocate(self):
        from repro.machine import RegisterConfig, register_file
        from repro.profile import run_allocated
        from repro.regalloc import AllocatorOptions, allocate_program

        program = compile_source(SMALL_CALL_SOURCE)
        reparsed = parse_ir(format_program(program))
        allocation = allocate_program(
            reparsed,
            register_file(RegisterConfig(4, 2, 1, 1)),
            AllocatorOptions.improved_chaitin(),
        )
        mech = run_allocated(allocation)
        base = run_program(program)
        assert_same_globals(base.globals_state, mech.globals_state)


class TestHandWrittenIR:
    def test_minimal_function(self):
        program = parse_ir(
            """
            func @double(%i0:x) -> int {
            entry:
                %i1 = const 2
                %i2 = mul %i0:x, %i1
                ret %i2
            }
            """
        )
        verify_program(program)
        assert run_program(program, "double", [21]).return_value == 42

    def test_branches_and_loops(self):
        program = parse_ir(
            """
            func @countdown(%i0:n) -> int {
            entry:
                jmp head
            head:
                %i1 = const 0
                %i2 = gt %i0:n, %i1
                br %i2, body, exit
            body:
                %i3 = const 1
                %i0:n = sub %i0:n, %i3
                jmp head
            exit:
                ret %i0:n
            }
            """
        )
        assert run_program(program, "countdown", [5]).return_value == 0

    def test_float_bank_and_conversions(self):
        program = parse_ir(
            """
            func @half(%i0) -> float {
            entry:
                %f1 = i2f %i0
                %f2 = const 0.5
                %f3 = mul %f1, %f2
                ret %f3
            }
            """
        )
        assert run_program(program, "half", [9]).return_value == 4.5

    def test_globals_and_calls(self):
        program = parse_ir(
            """
            global @g[4]:int = {7}

            func @get(%i0) -> int {
            entry:
                %i1 = load @g[%i0]
                ret %i1
            }

            func @main() -> void {
            entry:
                %i0 = const 0
                %i1 = call @get(%i0)
                %i2 = const 1
                store @g[%i2] = %i1
                ret
            }
            """
        )
        verify_program(program)
        assert run_program(program).globals_state["g"] == [7, 7, 0, 0]


class TestErrors:
    def test_bad_parameter_register(self):
        with pytest.raises(IRParseError, match="bad parameter"):
            parse_ir("func @f(%x0) -> void {\nentry:\n    ret\n}")

    def test_bad_operand_register(self):
        with pytest.raises(IRParseError, match="bad register"):
            parse_ir("func @f() -> void {\nentry:\n    %i0 = copy %q9\n    ret\n}")

    def test_unknown_opcode(self):
        with pytest.raises(IRParseError, match="unknown opcode"):
            parse_ir(
                "func @f() -> void {\nentry:\n    %i0 = frobnicate %i1\n    ret\n}"
            )

    def test_unknown_branch_target(self):
        with pytest.raises(IRParseError, match="unknown block"):
            parse_ir("func @f() -> void {\nentry:\n    jmp nowhere\n}")

    def test_unterminated_function(self):
        with pytest.raises(IRParseError, match="unterminated"):
            parse_ir("func @f() -> void {\nentry:\n    ret")

    def test_instruction_outside_function(self):
        with pytest.raises(IRParseError, match="outside"):
            parse_ir("%i0 = const 1")

    def test_instruction_before_label(self):
        with pytest.raises(IRParseError, match="before any block"):
            parse_ir("func @f() -> void {\n    ret\n}")

    def test_error_reports_line(self):
        with pytest.raises(IRParseError, match="line 3"):
            parse_ir("func @f() -> void {\nentry:\n    %i0 = wat %i1\n    ret\n}")
