"""Unit tests for BasicBlock / Function / Program containers."""

import pytest

from repro.ir import (
    FLOAT,
    INT,
    BinaryOpcode,
    Function,
    GlobalArray,
    IRBuilder,
    Program,
    Ret,
)


def make_diamond():
    """entry -> (then|else) -> join, returns (func, blocks)."""
    func = Function("diamond", param_types=[INT], return_type=INT)
    builder = IRBuilder(func)
    entry = builder.start_block("entry")
    then_b = builder.new_block("then")
    else_b = builder.new_block("else")
    join = builder.new_block("join")
    zero = builder.const(0, INT)
    cond = builder.binop(BinaryOpcode.GT, func.params[0], zero)
    builder.branch(cond, then_b, else_b)
    result = func.new_vreg(INT, "result")
    builder.set_block(then_b)
    one = builder.const(1, INT)
    builder.copy_to(result, one)
    builder.jump(join)
    builder.set_block(else_b)
    two = builder.const(2, INT)
    builder.copy_to(result, two)
    builder.jump(join)
    builder.set_block(join)
    builder.ret(result)
    return func, (entry, then_b, else_b, join)


class TestBasicBlock:
    def test_append_past_terminator_fails(self):
        func = Function("f", return_type=None)
        builder = IRBuilder(func)
        builder.start_block()
        builder.ret()
        with pytest.raises(ValueError, match="terminator"):
            builder.ret()

    def test_terminator_none_when_open(self):
        func = Function("f")
        block = func.new_block()
        assert block.terminator is None
        assert block.successors() == ()

    def test_len_and_iter(self):
        func = Function("f", return_type=None)
        builder = IRBuilder(func)
        block = builder.start_block()
        builder.const(1, INT)
        builder.ret()
        assert len(block) == 2
        assert [type(i).__name__ for i in block] == ["Const", "Ret"]


class TestFunction:
    def test_params_are_vregs_with_names(self):
        func = Function(
            "f", param_types=[INT, FLOAT], param_names=["a", "b"], return_type=INT
        )
        assert [p.name for p in func.params] == ["a", "b"]
        assert func.params[0].vtype is INT
        assert func.params[1].vtype is FLOAT

    def test_param_name_count_mismatch(self):
        with pytest.raises(ValueError):
            Function("f", param_types=[INT], param_names=["a", "b"])

    def test_new_vreg_ids_unique(self):
        func = Function("f")
        seen = {func.new_vreg(INT).id for _ in range(10)}
        assert len(seen) == 10

    def test_entry_requires_blocks(self):
        func = Function("f")
        with pytest.raises(ValueError):
            _ = func.entry

    def test_predecessors(self):
        func, (entry, then_b, else_b, join) = make_diamond()
        preds = func.predecessors()
        assert preds[entry] == []
        assert preds[then_b] == [entry]
        assert preds[else_b] == [entry]
        assert set(preds[join]) == {then_b, else_b}

    def test_vregs_includes_params_and_locals(self):
        func, _ = make_diamond()
        regs = func.vregs()
        assert func.params[0] in regs
        assert len(regs) == len(set(regs))

    def test_exit_blocks(self):
        func, (_, _, _, join) = make_diamond()
        assert func.exit_blocks() == [join]
        assert isinstance(join.terminator, Ret)

    def test_size_counts_instructions(self):
        func, _ = make_diamond()
        assert func.size() == sum(len(b) for b in func.blocks)


class TestProgram:
    def test_duplicate_function_rejected(self):
        program = Program()
        program.add_function(Function("f"))
        with pytest.raises(ValueError):
            program.add_function(Function("f"))

    def test_duplicate_global_rejected(self):
        program = Program()
        program.add_global(GlobalArray("g", INT, 4))
        with pytest.raises(ValueError):
            program.add_global(GlobalArray("g", INT, 4))

    def test_function_lookup_error(self):
        program = Program("prog")
        with pytest.raises(KeyError, match="nope"):
            program.function("nope")

    def test_global_array_initial_values(self):
        array = GlobalArray("g", FLOAT, 4, init=[1, 2])
        assert array.initial_values() == [1.0, 2.0, 0.0, 0.0]
        array_int = GlobalArray("h", INT, 3)
        assert array_int.initial_values() == [0, 0, 0]

    def test_global_array_validation(self):
        with pytest.raises(ValueError):
            GlobalArray("g", INT, 0)
        with pytest.raises(ValueError):
            GlobalArray("g", INT, 2, init=[1, 2, 3])
