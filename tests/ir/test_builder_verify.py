"""Unit tests for IRBuilder type handling and the IR verifier."""

import pytest

from repro.ir import (
    FLOAT,
    INT,
    BinaryOpcode,
    Branch,
    Call,
    Copy,
    Function,
    GlobalArray,
    IRBuilder,
    IRVerificationError,
    Jump,
    Program,
    Ret,
    UnaryOpcode,
    verify_function,
    verify_program,
)


class TestBuilderTypes:
    def test_const_infers_type_from_python_value(self):
        func = Function("f")
        builder = IRBuilder(func)
        builder.start_block()
        assert builder.const(3).vtype is INT
        assert builder.const(3.0).vtype is FLOAT

    def test_comparison_produces_int(self):
        func = Function("f")
        builder = IRBuilder(func)
        builder.start_block()
        a = builder.const(1.0, FLOAT)
        b = builder.const(2.0, FLOAT)
        assert builder.binop(BinaryOpcode.LT, a, b).vtype is INT

    def test_arithmetic_keeps_bank(self):
        func = Function("f")
        builder = IRBuilder(func)
        builder.start_block()
        a = builder.const(1.0, FLOAT)
        b = builder.const(2.0, FLOAT)
        assert builder.binop(BinaryOpcode.MUL, a, b).vtype is FLOAT

    def test_mixed_bank_binop_rejected(self):
        func = Function("f")
        builder = IRBuilder(func)
        builder.start_block()
        a = builder.const(1, INT)
        b = builder.const(2.0, FLOAT)
        with pytest.raises(ValueError):
            builder.binop(BinaryOpcode.ADD, a, b)

    def test_conversions_cross_banks(self):
        func = Function("f")
        builder = IRBuilder(func)
        builder.start_block()
        i = builder.const(1, INT)
        f = builder.unop(UnaryOpcode.I2F, i)
        assert f.vtype is FLOAT
        assert builder.unop(UnaryOpcode.F2I, f).vtype is INT

    def test_emit_without_block_fails(self):
        builder = IRBuilder(Function("f"))
        with pytest.raises(ValueError, match="insertion block"):
            builder.const(1, INT)


def _valid_func():
    func = Function("ok", param_types=[INT], return_type=INT)
    builder = IRBuilder(func)
    builder.start_block()
    one = builder.const(1, INT)
    result = builder.binop(BinaryOpcode.ADD, func.params[0], one)
    builder.ret(result)
    return func


class TestVerifier:
    def test_valid_function_passes(self):
        verify_function(_valid_func())

    def test_missing_terminator(self):
        func = Function("f", return_type=None)
        builder = IRBuilder(func)
        builder.start_block()
        builder.const(1, INT)
        with pytest.raises(IRVerificationError, match="terminator"):
            verify_function(func)

    def test_empty_function(self):
        with pytest.raises(IRVerificationError, match="no blocks"):
            verify_function(Function("f"))

    def test_branch_condition_must_be_int(self):
        func = Function("f", return_type=None)
        builder = IRBuilder(func)
        entry = builder.start_block()
        other = builder.new_block()
        cond = builder.const(1.0, FLOAT)
        entry.instrs.append(Branch(cond, other, other))
        other.instrs.append(Ret())
        with pytest.raises(IRVerificationError, match="condition"):
            verify_function(func)

    def test_branch_to_foreign_block(self):
        func = Function("f", return_type=None)
        builder = IRBuilder(func)
        entry = builder.start_block()
        foreign = Function("g").new_block()
        cond = builder.const(1, INT)
        entry.instrs.append(Branch(cond, foreign, foreign))
        with pytest.raises(IRVerificationError, match="foreign"):
            verify_function(func)

    def test_return_type_checked(self):
        func = Function("f", return_type=INT)
        builder = IRBuilder(func)
        builder.start_block()
        builder.ret()  # missing value
        with pytest.raises(IRVerificationError, match="without value"):
            verify_function(func)

    def test_void_return_with_value(self):
        func = Function("f", return_type=None)
        builder = IRBuilder(func)
        builder.start_block()
        v = builder.const(1, INT)
        func.entry.instrs.append(Ret(v))
        with pytest.raises(IRVerificationError, match="void"):
            verify_function(func)

    def test_use_of_undefined_register(self):
        func = Function("f", return_type=INT)
        builder = IRBuilder(func)
        builder.start_block()
        ghost = func.new_vreg(INT, "ghost")
        func.entry.instrs.append(Ret(ghost))
        with pytest.raises(IRVerificationError, match="possibly-undefined"):
            verify_function(func)

    def test_use_defined_on_one_path_only(self):
        func = Function("f", param_types=[INT], return_type=INT)
        builder = IRBuilder(func)
        entry = builder.start_block()
        then_b = builder.new_block()
        join = builder.new_block()
        zero = builder.const(0, INT)
        cond = builder.binop(BinaryOpcode.GT, func.params[0], zero)
        builder.branch(cond, then_b, join)
        builder.set_block(then_b)
        maybe = builder.const(5, INT, name="maybe")
        builder.jump(join)
        builder.set_block(join)
        builder.ret(maybe)
        with pytest.raises(IRVerificationError, match="possibly-undefined"):
            verify_function(func)

    def test_call_signature_checked_against_program(self):
        program = Program()
        callee = Function("callee", param_types=[INT], return_type=INT)
        builder = IRBuilder(callee)
        builder.start_block()
        builder.ret(callee.params[0])
        program.add_function(callee)

        caller = Function("caller", return_type=None)
        builder = IRBuilder(caller)
        builder.start_block()
        a = builder.const(1, INT)
        b = builder.const(2, INT)
        dst = caller.new_vreg(INT)
        caller.entry.instrs.append(Call(dst, "callee", [a, b]))  # arity 2 != 1
        builder.ret()
        program.add_function(caller)
        with pytest.raises(IRVerificationError, match="arity"):
            verify_program(program)

    def test_unknown_callee(self):
        program = Program()
        caller = Function("caller", return_type=None)
        builder = IRBuilder(caller)
        builder.start_block()
        caller.entry.instrs.append(Call(None, "ghost", []))
        builder.ret()
        program.add_function(caller)
        with pytest.raises(IRVerificationError, match="unknown function"):
            verify_program(program)

    def test_global_bank_mismatch(self):
        program = Program()
        program.add_global(GlobalArray("g", FLOAT, 4))
        func = Function("f", return_type=None)
        builder = IRBuilder(func)
        builder.start_block()
        idx = builder.const(0, INT)
        builder.load("g", idx, INT)  # int load from float array
        builder.ret()
        program.add_function(func)
        with pytest.raises(IRVerificationError, match="bank mismatch"):
            verify_program(program)

    def test_duplicate_block_names(self):
        func = Function("f", return_type=None)
        a = func.new_block()
        b = func.new_block()
        b.name = a.name
        a.instrs.append(Jump(b))
        b.instrs.append(Ret())
        with pytest.raises(IRVerificationError, match="duplicate block"):
            verify_function(func)

    def test_copy_between_banks_detected(self):
        func = Function("f", param_types=[INT, FLOAT], return_type=None)
        builder = IRBuilder(func)
        builder.start_block()
        bad = Copy.__new__(Copy)  # bypass the constructor check
        bad.dst = func.params[0]
        bad.src = func.params[1]
        func.entry.instrs.append(bad)
        builder.ret()
        with pytest.raises(IRVerificationError, match="banks"):
            verify_function(func)
