"""Unit tests for the IR instruction classes: defs/uses/rewriting."""

import pytest

from repro.ir import (
    FLOAT,
    INT,
    BinaryOpcode,
    BinOp,
    Branch,
    Call,
    Const,
    Copy,
    Jump,
    Load,
    Ret,
    Store,
    UnaryOp,
    UnaryOpcode,
    VReg,
)
from repro.ir.function import BasicBlock


def regs(n, vtype=INT):
    return [VReg(i, vtype, f"r{i}") for i in range(n)]


class TestDefsUses:
    def test_const_defs_only(self):
        (r,) = regs(1)
        instr = Const(r, 42)
        assert instr.defs() == (r,)
        assert instr.uses() == ()
        assert instr.value == 42

    def test_const_coerces_to_bank_type(self):
        r_int = VReg(0, INT)
        r_float = VReg(1, FLOAT)
        assert isinstance(Const(r_int, 3.7).value, int)
        assert isinstance(Const(r_float, 3).value, float)

    def test_binop(self):
        a, b, c = regs(3)
        instr = BinOp(BinaryOpcode.ADD, a, b, c)
        assert instr.defs() == (a,)
        assert instr.uses() == (b, c)

    def test_unaryop(self):
        a, b = regs(2)
        instr = UnaryOp(UnaryOpcode.NEG, a, b)
        assert instr.defs() == (a,)
        assert instr.uses() == (b,)

    def test_copy(self):
        a, b = regs(2)
        instr = Copy(a, b)
        assert instr.defs() == (a,)
        assert instr.uses() == (b,)

    def test_copy_rejects_bank_mismatch(self):
        a = VReg(0, INT)
        b = VReg(1, FLOAT)
        with pytest.raises(ValueError):
            Copy(a, b)

    def test_load_store(self):
        d, i, v = regs(3)
        load = Load(d, "arr", i)
        assert load.defs() == (d,)
        assert load.uses() == (i,)
        store = Store("arr", i, v)
        assert store.defs() == ()
        assert set(store.uses()) == {i, v}

    def test_call_with_and_without_dst(self):
        d, a1, a2 = regs(3)
        call = Call(d, "f", [a1, a2])
        assert call.defs() == (d,)
        assert call.uses() == (a1, a2)
        void_call = Call(None, "g", [a1])
        assert void_call.defs() == ()

    def test_terminators(self):
        (c,) = regs(1)
        b1, b2 = BasicBlock("a"), BasicBlock("b")
        br = Branch(c, b1, b2)
        assert br.is_terminator
        assert br.successors() == (b1, b2)
        jmp = Jump(b1)
        assert jmp.is_terminator
        assert jmp.successors() == (b1,)
        ret = Ret(c)
        assert ret.is_terminator
        assert ret.successors() == ()
        assert ret.uses() == (c,)
        assert Ret().uses() == ()

    def test_non_terminators(self):
        a, b = regs(2)
        assert not Copy(a, b).is_terminator
        assert not Const(a, 1).is_terminator


class TestRewriting:
    def test_replace_uses_binop(self):
        a, b, c, d = regs(4)
        instr = BinOp(BinaryOpcode.MUL, a, b, c)
        instr.replace_uses({b: d, c: d})
        assert instr.uses() == (d, d)
        assert instr.defs() == (a,)

    def test_replace_defs_binop(self):
        a, b, c, d = regs(4)
        instr = BinOp(BinaryOpcode.MUL, a, b, c)
        instr.replace_defs({a: d})
        assert instr.defs() == (d,)

    def test_replace_uses_is_per_slot(self):
        a, b = regs(2)
        instr = BinOp(BinaryOpcode.ADD, a, b, b)
        instr.replace_uses({b: a})
        assert instr.uses() == (a, a)

    def test_replace_call_args(self):
        d, a1, a2, n = regs(4)
        call = Call(d, "f", [a1, a2])
        call.replace_uses({a1: n})
        assert call.uses() == (n, a2)
        call.replace_defs({d: n})
        assert call.defs() == (n,)

    def test_replace_ret_value(self):
        a, b = regs(2)
        ret = Ret(a)
        ret.replace_uses({a: b})
        assert ret.uses() == (b,)

    def test_replace_branch_cond(self):
        a, b = regs(2)
        br = Branch(a, BasicBlock("x"), BasicBlock("y"))
        br.replace_uses({a: b})
        assert br.uses() == (b,)

    def test_replace_store_both_slots(self):
        i, v, n = regs(3)
        store = Store("arr", i, v)
        store.replace_uses({i: n, v: n})
        assert store.uses() == (n, n)

    def test_mapping_miss_is_noop(self):
        a, b, c = regs(3)
        instr = Copy(a, b)
        instr.replace_uses({c: a})
        assert instr.uses() == (b,)


class TestOpcodeProperties:
    def test_comparisons_flagged(self):
        comparisons = {
            BinaryOpcode.EQ,
            BinaryOpcode.NE,
            BinaryOpcode.LT,
            BinaryOpcode.LE,
            BinaryOpcode.GT,
            BinaryOpcode.GE,
        }
        for op in BinaryOpcode:
            assert op.is_comparison == (op in comparisons)

    def test_repr_contains_opcode(self):
        a, b, c = regs(3)
        assert "mul" in repr(BinOp(BinaryOpcode.MUL, a, b, c))
        assert "copy" in repr(Copy(a, b))
