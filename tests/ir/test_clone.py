"""Unit tests for IR cloning."""

from repro.ir import clone_function, clone_program, format_function
from repro.lang import compile_source
from repro.profile import run_program
from tests.conftest import SMALL_CALL_SOURCE, assert_same_globals


def test_clone_function_structure_identical():
    program = compile_source(SMALL_CALL_SOURCE)
    func = program.function("main")
    record = clone_function(func)
    assert record.func is not func
    # Register ids may be renumbered; shapes must match exactly.
    assert [b.name for b in record.func.blocks] == [b.name for b in func.blocks]
    for orig, new in zip(func.blocks, record.func.blocks):
        assert [type(i).__name__ for i in orig.instrs] == [
            type(i).__name__ for i in new.instrs
        ]


def test_clone_maps_cover_everything():
    program = compile_source(SMALL_CALL_SOURCE)
    func = program.function("helper")
    record = clone_function(func)
    assert set(record.block_map) == set(func.blocks)
    for orig, new in record.block_map.items():
        assert len(orig.instrs) == len(new.instrs)
    for param, new_param in zip(func.params, record.func.params):
        assert record.vreg_map[param] is new_param
        assert new_param.vtype is param.vtype


def test_clone_is_independent():
    program = compile_source(SMALL_CALL_SOURCE)
    func = program.function("main")
    record = clone_function(func)
    before = format_function(func)
    record.func.entry.instrs.pop()  # mutate the clone
    assert format_function(func) == before


def test_clone_program_runs_identically():
    program = compile_source(SMALL_CALL_SOURCE)
    cloned = clone_program(program)
    original = run_program(program)
    copy = run_program(cloned.program)
    assert_same_globals(original.globals_state, copy.globals_state)


def test_clone_block_references_rewritten():
    program = compile_source(SMALL_CALL_SOURCE)
    func = program.function("main")
    record = clone_function(func)
    original_blocks = set(func.blocks)
    for block in record.func.blocks:
        for succ in block.successors():
            assert succ not in original_blocks
