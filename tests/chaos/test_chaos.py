"""Chaos harness: corruption matrix, injection, determinism, campaigns."""

import random

import pytest

from repro.chaos import (
    CORRUPTION_ACTIONS,
    CORRUPTIONS,
    ChaosFault,
    Corruptor,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    run_campaign,
)
from repro.machine.mips import FULL_CONFIG, register_file
from repro.regalloc import allocate_program, verify_allocation
from repro.regalloc.errors import AllocationVerificationError
from repro.regalloc.options import PRESETS
from repro.resilience import resilient_allocate_program
from repro.workloads import compile_workload


def fresh_allocation(preset: str = "improved"):
    compiled = compile_workload("li")
    return allocate_program(
        compiled.program,
        register_file(FULL_CONFIG),
        PRESETS[preset](),
        compiled.dynamic_weights,
        cache=compiled.analyses,
    )


class TestCorruptionMatrix:
    """Each corruption class trips exactly the verifier check it names."""

    @pytest.mark.parametrize("action", CORRUPTION_ACTIONS)
    def test_corruption_trips_named_check(self, action):
        allocation = fresh_allocation()
        verify_allocation(allocation)  # sane before sabotage
        record = CORRUPTIONS[action](allocation, random.Random(0))
        assert record is not None, f"no candidate site for {action}"
        with pytest.raises(AllocationVerificationError) as exc:
            verify_allocation(allocation)
        assert exc.value.check == record["expect_check"]

    @pytest.mark.parametrize("action", CORRUPTION_ACTIONS)
    def test_chain_demotes_exactly_one_rung(self, action):
        compiled = compile_workload("li")
        plan = FaultPlan(seed=0, specs=[FaultSpec(action=action, rung=0)])
        corruptor = Corruptor(plan)
        allocation, report = resilient_allocate_program(
            compiled.program,
            register_file(FULL_CONFIG),
            PRESETS["improved"](),
            compiled.dynamic_weights,
            corrupt=corruptor,
        )
        assert len(corruptor.fired) == 1
        assert report.rung_index == 1
        assert report.rung == "no-coalesce"
        assert len(report.demotions) == 1
        demotion = report.demotions[0]
        assert demotion.rung == "primary"
        # The verifier rejected the sabotaged rung with exactly the
        # check the corruption class is designed to trip.
        assert demotion.check == corruptor.fired[0]["expect_check"]
        verify_allocation(allocation)  # the accepted rung really is clean


class TestInjection:
    def test_raise_action_demotes_one_rung(self, small_call_program):
        plan = FaultPlan(
            seed=0,
            specs=[FaultSpec(action="raise", site="phase:build", occurrence=1)],
        )
        injector = FaultInjector(plan)
        _, report = resilient_allocate_program(
            small_call_program,
            register_file(FULL_CONFIG),
            PRESETS["improved"](),
            injector=injector,
        )
        assert len(injector.fired) == 1
        assert report.rung_index == 1
        assert report.demotions[0].error_type == "ChaosFault"

    def test_budget_action_raises_budget_exceeded(self, small_call_program):
        plan = FaultPlan(
            seed=0,
            specs=[FaultSpec(action="budget", site="phase:build", occurrence=1)],
        )
        _, report = resilient_allocate_program(
            small_call_program,
            register_file(FULL_CONFIG),
            PRESETS["improved"](),
            injector=FaultInjector(plan),
        )
        assert report.demotions[0].error_type == "BudgetExceeded"

    def test_injector_raises_outside_chain(self, small_call_program):
        plan = FaultPlan(
            seed=0,
            specs=[FaultSpec(action="raise", site="phase:build", occurrence=1)],
        )
        with pytest.raises(ChaosFault):
            allocate_program(
                small_call_program,
                register_file(FULL_CONFIG),
                PRESETS["improved"](),
                tracer=FaultInjector(plan),
            )

    def test_final_rung_never_sabotaged(self, small_call_program):
        # A spillall primary is a one-rung (= final-rung) ladder, so the
        # injector must never be consulted at all.
        plan = FaultPlan(
            seed=0,
            specs=[FaultSpec(action="raise", site="phase:build", occurrence=1)],
        )
        injector = FaultInjector(plan)
        _, report = resilient_allocate_program(
            small_call_program,
            register_file(FULL_CONFIG),
            PRESETS["spillall"](),
            injector=injector,
        )
        assert report.rung == "primary"
        assert injector.fired == []


class TestDeterminism:
    def test_plan_from_seed_is_stable(self):
        for seed in (0, 1, 12345):
            assert (
                FaultPlan.from_seed(seed).as_dict()
                == FaultPlan.from_seed(seed).as_dict()
            )

    def test_same_seed_same_resilience_report(self, small_call_program):
        def run():
            plan = FaultPlan.from_seed(7, faults=3)
            _, report = resilient_allocate_program(
                small_call_program,
                register_file(FULL_CONFIG),
                PRESETS["improved"](),
                injector=FaultInjector(plan),
                corrupt=Corruptor(plan),
            )
            return report.as_dict()

        assert run() == run()

    def test_campaign_is_deterministic(self):
        def run():
            return run_campaign(
                ["li"], presets=["improved"], seeds=range(2)
            ).as_dict()

        assert run() == run()


class TestCampaign:
    def test_small_campaign_is_clean(self):
        report = run_campaign(
            ["li"], presets=["base", "improved", "spillall"], seeds=range(3)
        )
        assert report.runs
        assert report.all_clean
        assert not report.unclean
        assert not report.unattributed
        for run in report.runs:
            assert run.report is not None
            # every demotion is attributed to a concrete error
            for record in run.report["demotions"]:
                assert record["error_type"]

    def test_campaign_dict_shape(self):
        data = run_campaign(["li"], presets=["base"], seeds=range(1)).as_dict()
        assert data["total_runs"] == 1
        assert set(data) >= {
            "runs",
            "total_injections",
            "degraded_runs",
            "unclean_runs",
            "unattributed_runs",
            "all_clean",
        }
