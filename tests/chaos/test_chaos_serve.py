"""Service-level chaos: seeded fault plans and the campaign verdict.

The plan tests are pure determinism checks; the campaign test is the
real thing in miniature — a supervised server with its workers being
killed, hung and garbled under live traffic, judged by the same
``all_clean`` bar the CI job enforces at 50 faults.
"""

import pytest

from repro.chaos import (
    SERVICE_ACTIONS,
    ServeCampaignReport,
    ServiceFault,
    ServiceFaultPlan,
    record_serve_campaign,
    run_serve_campaign,
)
from repro.obs.metrics import METRICS


class TestServiceFaultPlan:
    def test_same_seed_same_plan(self):
        first = ServiceFaultPlan.from_seed(42, faults=20, span=80)
        second = ServiceFaultPlan.from_seed(42, faults=20, span=80)
        assert first.as_dict() == second.as_dict()
        assert len(first.faults) == 20

    def test_different_seeds_differ(self):
        a = ServiceFaultPlan.from_seed(1, faults=20, span=80)
        b = ServiceFaultPlan.from_seed(2, faults=20, span=80)
        assert a.as_dict() != b.as_dict()

    def test_dispatch_indices_are_distinct_and_within_span(self):
        plan = ServiceFaultPlan.from_seed(7, faults=30, span=60)
        afters = [fault.after for fault in plan.faults]
        assert len(set(afters)) == 30
        assert all(1 <= after <= 60 for after in afters)
        assert afters == sorted(afters)

    def test_actions_come_from_the_service_taxonomy(self):
        plan = ServiceFaultPlan.from_seed(3, faults=40, span=160)
        assert {fault.action for fault in plan.faults} <= set(SERVICE_ACTIONS)
        for fault in plan.faults:
            if fault.action == "latency":
                assert fault.latency_ms > 0.0

    def test_span_smaller_than_fault_count_is_rejected(self):
        with pytest.raises(ValueError):
            ServiceFaultPlan.from_seed(0, faults=10, span=5)

    def test_by_action_partitions_the_plan(self):
        plan = ServiceFaultPlan.from_seed(5, faults=25, span=100)
        assert sum(plan.by_action().values()) == 25

    def test_fault_as_dict_round_trip(self):
        fault = ServiceFault(action="latency", after=9, latency_ms=42.5)
        assert fault.as_dict() == {
            "action": "latency",
            "after": 9,
            "latency_ms": 42.5,
        }


class TestServeCampaign:
    def test_span_beyond_requests_is_rejected(self):
        with pytest.raises(ValueError):
            run_serve_campaign(seed=0, faults=5, requests=10, span=20)

    def test_small_campaign_survives_with_zero_failed_requests(self):
        report = run_serve_campaign(
            seed=11,
            faults=8,
            requests=30,
            concurrency=4,
            workers=2,
            watchdog_seconds=1.0,
            retries=3,
        )
        assert report.faults_planned == 8
        assert report.faults_fired == 8
        assert report.loadgen["failed"] == 0
        assert report.loadgen["ok"] == 30
        assert report.leaked_pids == []
        assert report.degraded_attributed
        # Every degraded answer must resolve in the flight recorder:
        # a fallback response nobody can explain fails the campaign.
        assert report.degraded_untraceable == []
        assert report.degraded_traced == len(
            report.loadgen["degraded_trace_ids"]
        )
        assert report.degraded_traceable
        assert report.all_clean
        # The supervisor story is structured and stamped.
        assert report.supervisor["schema_version"] == 1
        assert report.supervisor["counters"]["supervisor.chaos.injected"] == 8
        assert report.supervisor["worker_pids"]

        as_dict = report.as_dict()
        assert as_dict["schema_version"] == 1
        assert as_dict["all_clean"] is True
        assert as_dict["faults_fired"] == 8

        campaigns_before = METRICS.counter("chaos.serve.campaigns")
        failed_before = METRICS.counter("chaos.serve.failed")
        record_serve_campaign(report)
        assert METRICS.counter("chaos.serve.campaigns") == campaigns_before + 1
        assert METRICS.counter("chaos.serve.failed") == failed_before

    def test_verdict_fails_honestly_when_requests_fail(self):
        report = ServeCampaignReport(
            seed=0,
            plan={"faults": [{"action": "kill", "after": 1}]},
            loadgen={"failed": 1, "ok": 9},
            supervisor={"chaos": {"fired": [{"action": "kill"}]}, "degraded": []},
        )
        assert not report.all_clean

    def test_verdict_fails_when_a_fault_never_fires(self):
        report = ServeCampaignReport(
            seed=0,
            plan={"faults": [{"action": "kill", "after": 1}]},
            loadgen={"failed": 0, "ok": 10},
            supervisor={"chaos": {"fired": []}, "degraded": []},
        )
        assert not report.all_clean

    def test_verdict_fails_on_leaked_workers(self):
        report = ServeCampaignReport(
            seed=0,
            plan={"faults": []},
            loadgen={"failed": 0, "ok": 10},
            supervisor={"chaos": {"fired": []}, "degraded": []},
            leaked_pids=[12345],
        )
        assert not report.all_clean

    def test_verdict_fails_on_untraceable_degradation(self):
        report = ServeCampaignReport(
            seed=0,
            plan={"faults": []},
            loadgen={"failed": 0, "ok": 10},
            supervisor={"chaos": {"fired": []}, "degraded": []},
            degraded_untraceable=["deadbeefdeadbeef"],
        )
        assert not report.degraded_traceable
        assert not report.all_clean
        assert report.as_dict()["degraded_traceable"] is False

    def test_verdict_fails_on_unattributed_degradation(self):
        report = ServeCampaignReport(
            seed=0,
            plan={"faults": []},
            loadgen={"failed": 0, "ok": 10},
            supervisor={
                "chaos": {"fired": []},
                "degraded": [{"job": 1, "faults": []}],
            },
        )
        assert not report.all_clean
