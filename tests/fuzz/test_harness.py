"""The differential fuzzing harness itself.

A harness that cannot see bugs is silently useless, so next to the
clean-seed smoke checks every failure stage is exercised by injecting
the corresponding defect (uncompilable source, tampered machine
execution, starved fuel).
"""

from repro.fuzz import harness
from repro.fuzz.harness import (
    FUZZ_CONFIGS,
    check_seed,
    check_source,
    config_for_seed,
    run_fuzz,
)
from repro.regalloc.options import PRESETS


def test_clean_seed_checks_every_preset():
    failures, checked, skipped = check_seed(0)
    assert failures == []
    assert checked == len(PRESETS)
    assert not skipped


def test_config_rotation_is_deterministic():
    assert config_for_seed(0) is FUZZ_CONFIGS[0]
    assert config_for_seed(1) is FUZZ_CONFIGS[1]
    assert config_for_seed(len(FUZZ_CONFIGS)) is FUZZ_CONFIGS[0]


def test_compile_failure_recorded():
    failures, checked, skipped = check_source("int main( {", seed=7)
    assert checked == 0 and not skipped
    assert len(failures) == 1
    assert failures[0].stage == "compile"
    assert failures[0].allocator == "*"
    assert failures[0].seed == 7


def test_differential_mismatch_detected(monkeypatch):
    real = harness.run_allocated

    def tampered(allocation, fuel):
        result = real(allocation, fuel=fuel)
        result.return_value = (result.return_value or 0) + 1
        return result

    monkeypatch.setattr(harness, "run_allocated", tampered)
    failures, checked, _ = check_seed(0, presets=["base"])
    assert checked == 1
    assert [f.stage for f in failures] == ["differential"]
    assert "return value" in failures[0].error


def test_fuel_exhaustion_skips_instead_of_failing(monkeypatch):
    monkeypatch.setattr(harness, "BASELINE_FUEL", 5)
    failures, checked, skipped = check_seed(0)
    assert skipped
    assert failures == [] and checked == 0


def test_run_fuzz_reports_counts():
    report = run_fuzz([0, 1])
    assert report.ok
    assert report.seeds_run == 2
    assert report.checked == 2 * len(PRESETS)
    assert report.elapsed > 0


def test_run_fuzz_honours_time_budget():
    report = run_fuzz(list(range(500)), time_budget=0.0)
    assert report.budget_exhausted
    assert report.seeds_run < 500
