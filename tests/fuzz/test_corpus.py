"""Quarantine corpus round-trips and the committed-corpus regression gate."""

import json
from pathlib import Path

from repro.fuzz import (
    FuzzFailure,
    load_corpus,
    quarantine,
    replay_case,
    replay_corpus,
)

COMMITTED_CORPUS = Path(__file__).resolve().parent.parent / "fuzz_corpus"

CLEAN_SOURCE = """int out[1];

int main() {
    out[0] = 41 + 1;
    return out[0];
}"""


def make_failure(source=CLEAN_SOURCE, allocator="*", stage="baseline"):
    return FuzzFailure(
        seed=123,
        allocator=allocator,
        config=(6, 4, 2, 2),
        stage=stage,
        error="synthetic failure for the round-trip test",
        source=source,
    )


def test_quarantine_round_trip(tmp_path):
    path = quarantine(make_failure(), tmp_path)
    assert path.name == "seed00123_any_baseline.json"
    record = json.loads(path.read_text())
    assert record["seed"] == 123
    assert record["config"] == [6, 4, 2, 2]
    assert record["source"] == CLEAN_SOURCE
    # The compiled IR rides along for humans reading the corpus.
    assert record["ir"] and "@main" in record["ir"]
    loaded = load_corpus(tmp_path)
    assert len(loaded) == 1
    assert loaded[0]["path"] == str(path)


def test_uncompilable_source_quarantines_without_ir(tmp_path):
    path = quarantine(
        make_failure(source="int main( {", stage="compile"), tmp_path
    )
    assert json.loads(path.read_text())["ir"] is None


def test_replay_fixed_bug_is_clean(tmp_path):
    quarantine(make_failure(), tmp_path)
    results = replay_corpus(tmp_path)
    assert list(results.values()) == [[]]


def test_replay_live_bug_still_fails(tmp_path):
    quarantine(
        make_failure(source="int main( {", stage="compile"), tmp_path
    )
    (record,) = load_corpus(tmp_path)
    survivors = replay_case(record)
    assert survivors and survivors[0].stage == "compile"


def test_empty_corpus_is_empty():
    assert load_corpus(Path("does/not/exist")) == []


def test_committed_corpus_replays_clean():
    """Every bug the fuzzer ever quarantined must stay fixed."""
    records = load_corpus(COMMITTED_CORPUS)
    assert records, "the committed corpus should not be empty"
    for record in records:
        survivors = replay_case(record)
        assert survivors == [], (
            f"regression: {record['path']} reproduces again: "
            f"{[f.describe() for f in survivors]}"
        )
