"""The greedy statement-deleting reducer."""

from repro.fuzz.reduce import _regions, reduce_source

PROGRAM = """int main() {
  int x;
  x = 1;
  if (x) {
    x = 2;
    x = 3;
  }
  bad();
  while (x) {
    x = x - 1;
  }
  return x;
}"""


def balanced(source: str) -> bool:
    return source.count("{") == source.count("}")


def oracle(source: str) -> bool:
    """Stand-in failure: the marker statement survives, braces balance."""
    return "bad();" in source and "int main()" in source and balanced(source)


def test_regions_cover_whole_compound_statements():
    lines = PROGRAM.splitlines()
    regions = set(_regions(lines))
    # The if-statement spans its header through the matching close
    # (header + two body lines + the closing brace).
    if_start = next(i for i, l in enumerate(lines) if "if (x)" in l)
    assert (if_start, if_start + 4) in regions
    # Widest units come first so whole blocks are tried before bodies.
    widths = [end - start for start, end in _regions(lines)]
    assert widths == sorted(widths, reverse=True)


def test_reduces_to_minimal_reproducer():
    minimized = reduce_source(PROGRAM, oracle)
    assert minimized == "int main() {\n  bad();\n}"


def test_result_still_satisfies_oracle():
    minimized = reduce_source(PROGRAM, oracle)
    assert oracle(minimized)
    assert balanced(minimized)


def test_check_budget_returns_best_so_far():
    calls = []

    def counting_oracle(source: str) -> bool:
        calls.append(source)
        return oracle(source)

    minimized = reduce_source(PROGRAM, counting_oracle, max_checks=3)
    assert len(calls) <= 3
    assert oracle(minimized)  # never returns a non-reproducer
    assert len(minimized) <= len(PROGRAM)


def test_irreducible_source_unchanged():
    source = "int main() {\n  bad();\n}"
    assert reduce_source(source, oracle) == source
