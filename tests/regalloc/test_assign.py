"""Unit tests for color assignment and storage-class analysis."""

import math

from repro.machine import RegisterConfig, RegisterFile
from repro.regalloc import AllocatorOptions, ColorAssigner
from repro.regalloc.benefits import compute_benefits
from tests.regalloc.helpers import make_scenario


def assign(
    specs,
    edges,
    stack_names,
    config=(2, 1, 2, 1),
    options=None,
    entry_weight=1.0,
    forced_caller=(),
):
    graph, infos, benefits, regs = make_scenario(
        specs, edges, entry_weight=entry_weight
    )
    rf = RegisterFile(RegisterConfig(*config))
    options = options or AllocatorOptions.base_chaitin()
    assigner = ColorAssigner(
        graph,
        infos,
        benefits,
        rf,
        options,
        forced_caller={regs[n] for n in forced_caller},
        callee_cost=2.0 * entry_weight,
    )
    stack = [regs[name] for name in stack_names]
    result = assigner.run(stack)
    named_assignment = {
        reg.name: phys for reg, phys in result.assignment.items()
    }
    return named_assignment, [r.name for r in result.spilled], regs


class TestBaseModelPreference:
    def test_crossing_range_prefers_callee(self):
        assignment, spilled, _ = assign(
            {"crossing": (10.0, 4.0)}, [], ["crossing"]
        )
        assert assignment["crossing"].is_callee_save
        assert not spilled

    def test_leaf_range_prefers_caller(self):
        assignment, spilled, _ = assign({"leafy": (10.0, 0.0)}, [], ["leafy"])
        assert assignment["leafy"].is_caller_save

    def test_falls_back_to_other_kind(self):
        # Two crossing ranges, one callee-save register: the second
        # takes a caller-save register rather than spilling.
        assignment, spilled, _ = assign(
            {"a": (10.0, 4.0), "b": (10.0, 4.0)},
            [("a", "b")],
            ["a", "b"],
            config=(2, 1, 1, 1),
        )
        kinds = {assignment["a"].kind, assignment["b"].kind}
        assert len(kinds) == 2
        assert not spilled

    def test_neighbors_get_distinct_registers(self):
        assignment, spilled, _ = assign(
            {"a": (10.0, 0.0), "b": (10.0, 0.0), "c": (10.0, 0.0)},
            [("a", "b"), ("b", "c"), ("a", "c")],
            ["a", "b", "c"],
            config=(3, 1, 0, 1),
        )
        assert len({assignment[n] for n in "abc"}) == 3

    def test_assignment_failure_spills(self):
        assignment, spilled, _ = assign(
            {"a": (10.0, 0.0), "b": (10.0, 0.0)},
            [("a", "b")],
            ["b", "a"],  # a popped first
            config=(1, 1, 0, 1),
        )
        assert spilled == ["b"]
        assert "a" in assignment

    def test_callee_reuse_before_opening_new(self):
        # Two non-interfering crossing ranges share one callee-save
        # register rather than occupying two.
        assignment, spilled, _ = assign(
            {"a": (10.0, 4.0), "b": (10.0, 4.0)},
            [],
            ["a", "b"],
            config=(2, 1, 2, 1),
        )
        assert assignment["a"] == assignment["b"]


class TestStorageClassAnalysis:
    def test_spills_instead_of_bad_caller_register(self):
        # benefit_caller < 0 (hot call, cold refs): storage-class
        # analysis spills rather than taking a caller-save register.
        options = AllocatorOptions.improved_chaitin(sc=True, bs=False, pr=False)
        assignment, spilled, _ = assign(
            {"coldhot": (10.0, 50.0)},
            [],
            ["coldhot"],
            config=(2, 1, 0, 1),  # no callee-save available
            options=options,
        )
        assert spilled == ["coldhot"]
        assert "coldhot" not in assignment

    def test_base_model_takes_the_bad_register(self):
        # Same scenario without SC: base model pays the caller cost.
        assignment, spilled, _ = assign(
            {"coldhot": (10.0, 50.0)},
            [],
            ["coldhot"],
            config=(2, 1, 0, 1),
        )
        assert assignment["coldhot"].is_caller_save
        assert not spilled

    def test_benefit_preference_overrides_crossing(self):
        # Crosses a call, but caller cost is tiny and callee cost is
        # huge (hot function entry): SC prefers caller-save.
        options = AllocatorOptions.improved_chaitin(sc=True, bs=False, pr=False)
        assignment, spilled, _ = assign(
            {"cheapcross": (100.0, 2.0)},
            [],
            ["cheapcross"],
            options=options,
            entry_weight=40.0,  # callee cost 80
        )
        assert assignment["cheapcross"].is_caller_save

    def test_forced_caller_annotation_respected(self):
        options = AllocatorOptions.improved_chaitin(sc=True, bs=False, pr=True)
        assignment, spilled, _ = assign(
            {"wants_callee": (100.0, 10.0)},
            [],
            ["wants_callee"],
            options=options,
            forced_caller=["wants_callee"],
        )
        assert assignment["wants_callee"].is_caller_save


class TestCalleeCostModels:
    # The paper's example (Section 4): two live ranges with spill cost
    # 4000 sharing one callee-save register of cost 5000.  First-user
    # refuses (4000 < 5000 for the first user); shared accepts
    # (4000 + 4000 > 5000), saving 3000 operations.
    SPECS = {"u": (4000.0, 9000.0), "v": (4000.0, 9000.0)}

    def test_first_user_model_spills_both(self):
        options = AllocatorOptions.improved_chaitin(
            sc=True, bs=False, pr=False
        ).with_(callee_model="first")
        assignment, spilled, _ = assign(
            self.SPECS,
            [],
            ["u", "v"],
            config=(1, 1, 1, 1),
            options=options,
            entry_weight=2500.0,  # callee cost 5000
        )
        assert set(spilled) == {"u", "v"}

    def test_shared_model_keeps_both(self):
        options = AllocatorOptions.improved_chaitin(
            sc=True, bs=False, pr=False
        ).with_(callee_model="shared")
        assignment, spilled, _ = assign(
            self.SPECS,
            [],
            ["u", "v"],
            config=(1, 1, 1, 1),
            options=options,
            entry_weight=2500.0,
        )
        assert not spilled
        assert assignment["u"] == assignment["v"]
        assert assignment["u"].is_callee_save

    def test_shared_model_spills_unprofitable_set(self):
        # Two tiny ranges that together still do not cover the cost.
        options = AllocatorOptions.improved_chaitin(
            sc=True, bs=False, pr=False
        ).with_(callee_model="shared")
        assignment, spilled, _ = assign(
            {"u": (1000.0, 9000.0), "v": (1000.0, 9000.0)},
            [],
            ["u", "v"],
            config=(1, 1, 1, 1),
            options=options,
            entry_weight=2500.0,
        )
        assert set(spilled) == {"u", "v"}

    def test_first_user_pays_second_rides_free(self):
        # First user profitable (6000 > 5000); second is free and kept
        # even though its own benefit is negative.
        options = AllocatorOptions.improved_chaitin(
            sc=True, bs=False, pr=False
        ).with_(callee_model="first")
        assignment, spilled, _ = assign(
            {"big": (6000.0, 20000.0), "small": (1000.0, 20000.0)},
            [],
            ["small", "big"],  # big pops first
            config=(1, 1, 1, 1),
            options=options,
            entry_weight=2500.0,
        )
        assert not spilled
        assert assignment["big"] == assignment["small"]

    def test_spill_temps_never_spilled_by_sc(self):
        options = AllocatorOptions.improved_chaitin(sc=True, bs=False, pr=False)
        graph, infos, benefits, regs = make_scenario(
            {"temp": (10.0, 50.0)}, [], entry_weight=1.0
        )
        infos[regs["temp"]].spill_cost = math.inf
        infos[regs["temp"]].is_spill_temp = True
        benefits = compute_benefits(infos, __import__(
            "repro.analysis.frequency", fromlist=["BlockWeights"]
        ).BlockWeights(weights={}, entry_weight=1.0))
        rf = RegisterFile(RegisterConfig(2, 1, 0, 1))
        assigner = ColorAssigner(
            graph, infos, benefits, rf, options, callee_cost=2.0
        )
        result = assigner.run([regs["temp"]])
        assert not result.spilled
