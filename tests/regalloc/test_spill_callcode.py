"""Unit tests for spill-code and save/restore-code insertion."""

from repro.analysis.frequency import static_weights
from repro.ir import Branch, Call, Copy
from repro.lang import compile_source
from repro.machine import RegisterConfig, register_file
from repro.profile import run_allocated, run_program
from repro.regalloc import (
    AllocatorOptions,
    SlotAllocator,
    allocate_program,
    build_webs,
    insert_spill_code,
)
from repro.regalloc.callcode import callee_saved_registers
from repro.regalloc.spillinstr import OverheadKind, SpillLoad, SpillStore
from tests.conftest import assert_same_globals


class TestSpillCodeInsertion:
    def _spill_everything(self, source: str, func_name: str = "main"):
        program = compile_source(source)
        func = program.function(func_name)
        build_webs(func)
        regs = [r for r in func.vregs()]
        temps = set()
        slots = SlotAllocator()
        slot_of = insert_spill_code(func, regs, slots, temps)
        return program, func, temps, slot_of

    def test_every_use_preceded_by_reload(self):
        program, func, temps, slot_of = self._spill_everything(
            "int out[1];\nvoid main() { int a = 2; out[0] = a + 3; }"
        )
        for block in func.blocks:
            for i, instr in enumerate(block.instrs):
                for used in instr.uses():
                    if used in temps and not isinstance(instr, SpillStore):
                        kinds = [
                            type(p).__name__ for p in block.instrs[:i]
                        ]
                        assert "SpillLoad" in kinds

    def test_defs_followed_by_store(self):
        program, func, temps, slot_of = self._spill_everything(
            "int out[1];\nvoid main() { int a = 2; out[0] = a; }"
        )
        for block in func.blocks:
            for i, instr in enumerate(block.instrs):
                if isinstance(instr, SpillStore):
                    assert instr.kind is OverheadKind.SPILL

    def test_def_and_use_get_separate_temps(self):
        # a = a + 1 with a spilled: reload into t1, store from t2.
        program, func, temps, slot_of = self._spill_everything(
            "int out[1];\nvoid main() { int a = 2; a = a + 1; out[0] = a; }"
        )
        assert len(temps) >= 3

    def test_branch_condition_reloaded(self):
        program, func, temps, slot_of = self._spill_everything(
            "int out[1];\nvoid main() { int a = 2; if (a > 0) { out[0] = 1; } }"
        )
        for block in func.blocks:
            term = block.terminator
            if isinstance(term, Branch):
                assert any(
                    isinstance(i, SpillLoad) for i in block.instrs[:-1]
                )

    def test_spilled_param_stored_at_entry(self):
        program = compile_source(
            """
            int out[1];
            int f(int p) { return p * 2; }
            void main() { out[0] = f(21); }
            """
        )
        func = program.function("f")
        build_webs(func)
        temps = set()
        insert_spill_code(func, [func.params[0]], SlotAllocator(), temps)
        first = func.entry.instrs[0]
        assert isinstance(first, SpillStore)
        assert first.src is func.params[0]

    def test_execution_with_everything_spilled(self):
        # The ultimate spill test: every web of every function spilled,
        # then allocated and executed.
        source = """
        int out[2];
        int helper(int x, int y) { return x * y + 1; }
        void main() {
            int acc = 0;
            for (int i = 0; i < 6; i = i + 1) {
                acc = acc + helper(i, acc);
            }
            out[0] = acc;
        }
        """
        program = compile_source(source)
        base = run_program(program)
        rf = register_file(RegisterConfig(3, 2, 1, 1))
        allocation = allocate_program(program, rf, AllocatorOptions.base_chaitin())
        mech = run_allocated(allocation)
        assert_same_globals(base.globals_state, mech.globals_state)


class TestSaveRestoreCode:
    SOURCE = """
    int out[1];
    int id(int x) { return x; }
    void main() {
        int across = 3;
        int total = 0;
        for (int i = 0; i < 4; i = i + 1) {
            total = total + id(i) + across;
        }
        out[0] = total;
    }
    """

    def _allocate(self, config):
        program = compile_source(self.SOURCE)
        rf = register_file(RegisterConfig(*config))
        return allocate_program(program, rf, AllocatorOptions.base_chaitin())

    def test_caller_save_wraps_calls(self):
        allocation = self._allocate((6, 4, 0, 0))
        func = allocation.functions["main"].func
        for block in func.blocks:
            for i, instr in enumerate(block.instrs):
                if isinstance(instr, Call):
                    before = block.instrs[i - 1]
                    after = block.instrs[i + 1]
                    assert isinstance(before, SpillStore)
                    assert before.kind is OverheadKind.CALLER_SAVE
                    assert isinstance(after, SpillLoad)
                    assert after.kind is OverheadKind.CALLER_SAVE

    def test_callee_save_at_entry_and_exits(self):
        allocation = self._allocate((6, 4, 3, 3))
        func = allocation.functions["main"].func
        saved = callee_saved_registers(func)
        assert saved, "crossing ranges should use callee-save registers"
        # Every return must restore exactly the saved set.
        from repro.ir import Ret

        for block in func.blocks:
            if isinstance(block.terminator, Ret):
                restores = [
                    i.dst
                    for i in block.instrs
                    if isinstance(i, SpillLoad)
                    and i.kind is OverheadKind.CALLEE_SAVE
                ]
                assert set(restores) == set(saved)

    def test_unused_callee_registers_not_saved(self):
        allocation = self._allocate((6, 4, 3, 3))
        func = allocation.functions["main"].func
        used_callee = {
            p
            for p in allocation.functions["main"].assignment.values()
            if p.is_callee_save
        }
        assert set(callee_saved_registers(func)) == used_callee

    def test_leaf_function_has_no_caller_save_code(self):
        allocation = self._allocate((6, 4, 0, 0))
        func = allocation.functions["id"].func
        for instr in func.instructions():
            if isinstance(instr, (SpillLoad, SpillStore)):
                assert instr.kind is not OverheadKind.CALLER_SAVE
