"""Unit tests for the CBH call-cost model."""

from repro.analysis.frequency import static_weights
from repro.lang import compile_source
from repro.machine import RegisterConfig, register_file
from repro.profile import run_allocated, run_program
from repro.regalloc import (
    AllocatorOptions,
    allocate_program,
    augment_for_cbh,
    build_interference,
    build_webs,
)
from tests.conftest import assert_same_globals

CALL_SOURCE = """
int out[1];
int id(int x) { return x; }
void main() {
    int across = 3;
    int r = id(7);
    out[0] = across + r;
}
"""


class TestAugmentation:
    def _augmented(self, config):
        program = compile_source(CALL_SOURCE)
        func = program.function("main")
        build_webs(func)
        weights = static_weights(func)
        graph, infos = build_interference(func, weights, set())
        rf = register_file(RegisterConfig(*config))
        context = augment_for_cbh(func, graph, infos, rf, weights)
        return graph, infos, context, rf

    def test_one_pseudo_per_callee_register(self):
        graph, infos, context, rf = self._augmented((4, 2, 3, 2))
        assert len(context.pseudo_for) == 5  # 3 int + 2 float

    def test_pseudo_interferes_with_same_bank_only(self):
        graph, infos, context, rf = self._augmented((4, 2, 2, 2))
        for pseudo, phys in context.pseudo_for.items():
            for neighbor in graph.neighbors(pseudo):
                assert neighbor.vtype is pseudo.vtype

    def test_pseudo_spill_cost_is_save_restore(self):
        graph, infos, context, rf = self._augmented((4, 2, 1, 1))
        for pseudo in context.pseudo_for:
            assert infos[pseudo].spill_cost == 2.0  # 2 * entry weight 1

    def test_crossing_ranges_identified(self):
        graph, infos, context, rf = self._augmented((4, 2, 1, 1))
        names = {reg.name for reg in context.crossing}
        assert "across" in names
        assert "r" not in names


class TestCBHBehaviour:
    def test_zero_callee_registers_forces_spill_of_crossing(self):
        program = compile_source(CALL_SOURCE)
        rf = register_file(RegisterConfig(6, 4, 0, 0))
        allocation = allocate_program(program, rf, AllocatorOptions.cbh())
        fa = allocation.functions["main"]
        spilled_names = {r.name for r in fa.spilled}
        assert "across" in spilled_names

    def test_callee_register_available_keeps_crossing(self):
        program = compile_source(CALL_SOURCE)
        rf = register_file(RegisterConfig(6, 4, 2, 2))
        allocation = allocate_program(program, rf, AllocatorOptions.cbh())
        fa = allocation.functions["main"]
        across = next(r for r in fa.assignment if r.name == "across")
        assert fa.assignment[across].is_callee_save

    def test_crossing_never_gets_caller_save(self):
        program = compile_source(CALL_SOURCE)
        for config in [(6, 4, 1, 1), (4, 2, 3, 2)]:
            rf = register_file(RegisterConfig(*config))
            allocation = allocate_program(program, rf, AllocatorOptions.cbh())
            fa = allocation.functions["main"]
            for reg, phys in fa.assignment.items():
                if reg.name == "across":
                    assert phys.is_callee_save

    def test_non_crossing_prefers_caller_save(self):
        program = compile_source(CALL_SOURCE)
        rf = register_file(RegisterConfig(6, 4, 2, 2))
        allocation = allocate_program(program, rf, AllocatorOptions.cbh())
        fa = allocation.functions["main"]
        # The call result does not cross a call; coalescing may have
        # renamed it, so find it as the Call destination in final code.
        from repro.ir import Call

        call = next(
            i for i in fa.func.instructions() if isinstance(i, Call)
        )
        assert fa.assignment[call.dst].is_caller_save

    def test_execution_equivalence_across_configs(self):
        program = compile_source(CALL_SOURCE)
        base = run_program(program)
        for config in [(6, 4, 0, 0), (6, 4, 1, 1), (4, 2, 4, 3)]:
            rf = register_file(RegisterConfig(*config))
            allocation = allocate_program(program, rf, AllocatorOptions.cbh())
            mech = run_allocated(allocation)
            assert_same_globals(base.globals_state, mech.globals_state)

    def test_untouched_callee_register_costs_nothing(self):
        # A leaf function under no pressure should not save/restore
        # any callee-save register under CBH.
        source = """
        int out[1];
        void main() { out[0] = 1 + 2; }
        """
        program = compile_source(source)
        rf = register_file(RegisterConfig(4, 2, 4, 2))
        allocation = allocate_program(program, rf, AllocatorOptions.cbh())
        fa = allocation.functions["main"]
        assert not any(p.is_callee_save for p in fa.assignment.values())
