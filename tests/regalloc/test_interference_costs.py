"""Unit tests for interference-graph construction and cost data."""

import math

from repro.analysis.frequency import static_weights
from repro.lang import compile_source
from repro.regalloc import build_interference, build_webs
from repro.regalloc.interference import InterferenceGraph


def build(source: str, func_name: str = "main"):
    program = compile_source(source)
    func = program.function(func_name)
    build_webs(func)
    graph, infos = build_interference(func, static_weights(func), set())
    named = {}
    for reg in graph.nodes:
        if reg.name:
            named.setdefault(reg.name, reg)
    return graph, infos, named


class TestGraphStructure:
    def test_simultaneously_live_interfere(self):
        graph, infos, named = build(
            """
            int out[1];
            void main() {
                int a = 1;
                int b = 2;
                out[0] = a + b;
            }
            """
        )
        assert graph.interferes(named["a"], named["b"])

    def test_disjoint_lifetimes_do_not_interfere(self):
        graph, infos, named = build(
            """
            int out[2];
            void main() {
                int a = 1;
                out[0] = a + 1;
                int b = 2;
                out[1] = b + 1;
            }
            """
        )
        assert not graph.interferes(named["a"], named["b"])

    def test_copy_operands_do_not_interfere(self):
        # b = a; both still live afterwards would interfere, but a
        # plain copy with a dead source must leave them mergeable.
        graph, infos, named = build(
            """
            int out[1];
            void main() {
                int a = 1;
                int b = a;
                out[0] = b;
            }
            """
        )
        assert not graph.interferes(named["a"], named["b"])

    def test_banks_never_interfere(self):
        graph, infos, named = build(
            """
            int out[1];
            float fout[1];
            void main() {
                int a = 1;
                float f = 2.0;
                out[0] = a;
                fout[0] = f;
            }
            """
        )
        assert not graph.interferes(named["a"], named["f"])

    def test_params_interfere_at_entry(self):
        graph, infos, named = build(
            """
            int f(int a, int b) { return a + b; }
            void main() { int x = f(1, 2); }
            """,
            "f",
        )
        assert graph.interferes(named["a"], named["b"])

    def test_merge_unions_neighbors(self):
        graph = InterferenceGraph()
        from tests.regalloc.helpers import fresh_reg

        a, b, c, d = (fresh_reg(n) for n in "abcd")
        graph.add_edge(a, c)
        graph.add_edge(b, d)
        graph.merge(a, b)
        assert graph.interferes(a, c)
        assert graph.interferes(a, d)
        assert b not in set(graph.nodes)


class TestCosts:
    def test_spill_cost_counts_weighted_refs(self):
        graph, infos, named = build(
            """
            int out[1];
            void main() {
                int hot = 0;
                for (int i = 0; i < 4; i = i + 1) {
                    hot = hot + i;
                }
                out[0] = hot;
            }
            """
        )
        hot = infos[named["hot"]]
        # One def at weight 1, one def+use at weight 10, one use at 1.
        assert hot.spill_cost > 10.0
        cold_defs_only = hot.num_defs
        assert cold_defs_only >= 2

    def test_spill_temp_cost_infinite(self):
        program = compile_source(
            "int out[1];\nvoid main() { int a = 1; out[0] = a; }"
        )
        func = program.function("main")
        build_webs(func)
        temps = {func.vregs()[0]}
        graph, infos = build_interference(func, static_weights(func), temps)
        target = next(iter(temps))
        assert math.isinf(infos[target].spill_cost)
        assert infos[target].is_spill_temp

    def test_size_counts_blocks(self):
        graph, infos, named = build(
            """
            int out[1];
            void main() {
                int wide = 1;
                if (out[0] > 0) { out[0] = wide; } else { out[0] = wide + 1; }
                out[0] = wide;
            }
            """
        )
        assert infos[named["wide"]].size >= 4


class TestCallCrossing:
    SOURCE = """
    int out[1];
    int id(int x) { return x; }
    void main() {
        int across = 5;
        int result = id(7);
        out[0] = across + result;
    }
    """

    def test_live_through_call_crosses(self):
        graph, infos, named = build(self.SOURCE)
        assert infos[named["across"]].crosses_calls
        assert infos[named["across"]].caller_cost == 2.0

    def test_call_result_does_not_cross(self):
        graph, infos, named = build(self.SOURCE)
        assert not infos[named["result"]].crosses_calls

    def test_dying_argument_does_not_cross(self):
        graph, infos, named = build(
            """
            int out[1];
            int id(int x) { return x; }
            void main() {
                int arg = 5;
                out[0] = id(arg);
            }
            """
        )
        assert not infos[named["arg"]].crosses_calls

    def test_arg_reused_after_call_crosses(self):
        graph, infos, named = build(
            """
            int out[1];
            int id(int x) { return x; }
            void main() {
                int arg = 5;
                int r = id(arg);
                out[0] = arg + r;
            }
            """
        )
        assert infos[named["arg"]].crosses_calls

    def test_caller_cost_scales_with_loop_weight(self):
        graph, infos, named = build(
            """
            int out[1];
            int id(int x) { return x; }
            void main() {
                int across = 3;
                for (int i = 0; i < 4; i = i + 1) {
                    out[0] = id(i) + across;
                }
            }
            """
        )
        # The call sits at loop depth 1: weight 10, cost 2 * 10.
        assert infos[named["across"]].caller_cost == 20.0
