"""Pipeline-manager behaviour: reconstruction identity, timings, cache.

The regression target: with the analysis cache threaded through the
framework, ``reconstruct=True`` (the paper's graph-reconstruction box)
and a full per-iteration rebuild must still produce bit-identical
allocations, and every run must surface per-phase timings.
"""

import pytest

from repro.analysis import AnalysisCache
from repro.machine import RegisterConfig, register_file
from repro.regalloc import AllocatorOptions, PipelineStats, allocate_program
from repro.workloads import compile_workload

PRESETS = {
    "base": AllocatorOptions.base_chaitin(),
    "optimistic": AllocatorOptions.optimistic_coloring(),
    "improved": AllocatorOptions.improved_chaitin(),
    "improved-optimistic": AllocatorOptions.improved_optimistic(),
    "priority": AllocatorOptions.priority_based(),
    "cbh": AllocatorOptions.cbh(),
}

CONFIG = RegisterConfig(6, 4, 2, 2)


def _snapshot(allocation):
    """An identity-free, comparable view of a program allocation.

    Virtual registers are per-clone objects; their reprs (id + source
    name) are deterministic under the deterministic renaming, so two
    runs over separate clones compare equal iff the allocator made the
    same decisions.
    """
    snapshot = {}
    for name, fa in allocation.functions.items():
        snapshot[name] = (
            {repr(reg): phys.name for reg, phys in fa.assignment.items()},
            [repr(reg) for reg in fa.spilled],
            fa.iterations,
            fa.frame_slots,
        )
    return snapshot


@pytest.mark.parametrize("workload", ["compress", "eqntott"])
@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_reconstruct_matches_full_rebuild(workload, preset):
    compiled = compile_workload(workload)
    options = PRESETS[preset]
    regfile = register_file(CONFIG)
    rebuilt = allocate_program(
        compiled.program, regfile, options, compiled.dynamic_weights,
        reconstruct=False,
    )
    reconstructed = allocate_program(
        compiled.program, regfile, options, compiled.dynamic_weights,
        reconstruct=True,
    )
    assert _snapshot(rebuilt) == _snapshot(reconstructed)


class TestPipelineStats:
    def test_per_function_phase_timings_nonzero(self):
        compiled = compile_workload("compress")
        allocation = allocate_program(
            compiled.program,
            register_file(CONFIG),
            AllocatorOptions.improved_chaitin(),
            compiled.dynamic_weights,
        )
        for name, fa in allocation.functions.items():
            stats = fa.stats
            assert stats.iterations == fa.iterations
            for phase in ("build", "coalesce", "order", "assign", "emit"):
                assert getattr(stats, phase) > 0.0, (name, phase)
            assert stats.total_seconds > 0.0

    def test_program_stats_aggregate(self):
        compiled = compile_workload("compress")
        allocation = allocate_program(
            compiled.program,
            register_file(CONFIG),
            AllocatorOptions.improved_chaitin(),
            compiled.dynamic_weights,
        )
        total = allocation.stats
        assert total.build == pytest.approx(
            sum(fa.stats.build for fa in allocation.functions.values())
        )
        assert total.iterations == sum(
            fa.iterations for fa in allocation.functions.values()
        )

    def test_spill_insert_timed_when_spills_happen(self):
        compiled = compile_workload("compress")
        allocation = allocate_program(
            compiled.program,
            register_file(RegisterConfig(3, 2, 0, 0)),
            AllocatorOptions.base_chaitin(),
            compiled.dynamic_weights,
        )
        spilled = [fa for fa in allocation.functions.values() if fa.spilled]
        assert spilled, "pressure config should force spills"
        assert all(fa.stats.spill_insert > 0.0 for fa in spilled)

    def test_stats_addition(self):
        a = PipelineStats(build=1.0, iterations=2, cache_hits=3)
        b = PipelineStats(build=0.5, order=1.5, cache_misses=4)
        c = a + b
        assert c.build == 1.5
        assert c.order == 1.5
        assert c.iterations == 2
        assert c.cache_hits == 3
        assert c.cache_misses == 4


class TestSharedAnalysisCache:
    def test_sweep_reuses_original_program_analyses(self):
        """A persistent cache turns repeat allocations into cache hits."""
        compiled = compile_workload("eqntott")
        options = AllocatorOptions.improved_chaitin()
        cache = AnalysisCache()
        allocate_program(
            compiled.program,
            register_file(CONFIG),
            options,
            cache=cache,
        )
        first_misses = cache.misses
        allocate_program(
            compiled.program,
            register_file(RegisterConfig(8, 6, 2, 2)),
            options,
            cache=cache,
        )
        # The second config recomputes clone-side analyses but reuses
        # every static-weight (original-side) entry.
        assert cache.misses - first_misses < first_misses
        assert cache.hits > 0

    def test_allocation_records_cache_traffic(self):
        compiled = compile_workload("eqntott")
        allocation = allocate_program(
            compiled.program,
            register_file(CONFIG),
            AllocatorOptions.improved_chaitin(),
            compiled.dynamic_weights,
        )
        total = allocation.stats
        assert total.cache_misses > 0
        assert total.cache_hits > 0
