"""Unit tests for aggressive copy coalescing."""

from repro.analysis.frequency import static_weights
from repro.ir import Copy, verify_program
from repro.lang import compile_source
from repro.profile import run_program
from repro.regalloc import build_interference, build_webs, coalesce_round
from tests.conftest import assert_same_globals


def setup(source: str, func_name: str = "main"):
    program = compile_source(source)
    func = program.function(func_name)
    build_webs(func)
    graph, infos = build_interference(func, static_weights(func), set())
    return program, func, graph, infos


def count_copies(func) -> int:
    return sum(isinstance(i, Copy) for i in func.instructions())


class TestCoalescing:
    def test_simple_chain_fully_coalesced(self):
        program, func, graph, infos = setup(
            """
            int out[1];
            void main() {
                int a = 5;
                int b = a;
                int c = b;
                out[0] = c;
            }
            """
        )
        merged = coalesce_round(func, graph, infos)
        assert merged >= 2
        assert count_copies(func) == 0

    def test_interfering_copy_survives(self):
        program, func, graph, infos = setup(
            """
            int out[2];
            void main() {
                int a = 5;
                int b = a;
                a = 9;
                out[0] = b;
                out[1] = a;
            }
            """
        )
        # b = a where both a-webs... the second a web interferes with
        # b (both live at out stores); at least one copy remains or the
        # merge is refused where interference exists.
        coalesce_round(func, graph, infos)
        for block in func.blocks:
            for instr in block.instrs:
                if isinstance(instr, Copy):
                    assert graph.interferes(instr.dst, instr.src)

    def test_semantics_preserved(self):
        source = """
        int out[2];
        int helper(int x) { return x + 7; }
        void main() {
            int a = 1;
            int b = a;
            int c = helper(b);
            int d = c;
            out[0] = d;
            out[1] = b;
        }
        """
        program, func, graph, infos = setup(source)
        before = run_program(compile_source(source)).globals_state
        while coalesce_round(func, graph, infos):
            from repro.regalloc import build_interference as rebuild

            graph, infos = rebuild(func, static_weights(func), set())
        verify_program(program)
        after = run_program(program).globals_state
        assert_same_globals(before, after)

    def test_merged_info_accumulates(self):
        program, func, graph, infos = setup(
            """
            int out[1];
            void main() {
                int a = 5;
                int b = a;
                out[0] = b;
            }
            """
        )
        total_cost_before = sum(i.spill_cost for i in infos.values())
        merged = coalesce_round(func, graph, infos)
        assert merged == 2  # const->a and a->b both coalesce
        # The surviving info carries the merged cost (conservatively).
        total_cost_after = sum(i.spill_cost for i in infos.values())
        assert total_cost_after == total_cost_before

    def test_params_survive_merges(self):
        program = compile_source(
            """
            int out[1];
            int f(int a) {
                int b = a;
                return b + 1;
            }
            void main() { out[0] = f(3); }
            """
        )
        func = program.function("f")
        build_webs(func)
        graph, infos = build_interference(func, static_weights(func), set())
        coalesce_round(func, graph, infos)
        # The parameter register must still be func.params[0].
        used = set()
        for instr in func.instructions():
            used.update(instr.uses())
            used.update(instr.defs())
        assert func.params[0] in used

    def test_spill_temps_not_coalesced(self):
        program, func, graph, infos = setup(
            """
            int out[1];
            void main() {
                int a = 5;
                int b = a;
                out[0] = b;
            }
            """
        )
        for info in infos.values():
            info.is_spill_temp = True
        merged = coalesce_round(func, graph, infos)
        assert merged == 0
        assert count_copies(func) == 2

    def test_round_reaches_fixpoint(self):
        program, func, graph, infos = setup(
            """
            int out[1];
            void main() {
                int a = 1;
                int b = a;
                int c = b;
                int d = c;
                out[0] = d;
            }
            """
        )
        rounds = 0
        while coalesce_round(func, graph, infos):
            rounds += 1
            graph, infos = build_interference(func, static_weights(func), set())
            assert rounds < 10
        assert count_copies(func) == 0
