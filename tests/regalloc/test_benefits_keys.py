"""Unit tests for the benefit functions and ordering keys."""

import math

from repro.analysis.frequency import BlockWeights
from repro.regalloc.benefits import (
    Benefits,
    callee_save_cost,
    delta_key,
    max_key,
    preference_key,
    priority_function,
)
from repro.regalloc.interference import LiveRangeInfo
from tests.regalloc.helpers import fresh_reg, make_scenario


class TestBenefitFunctions:
    def test_compute_benefits_formula(self):
        graph, infos, benefits, regs = make_scenario(
            {"hot": (100.0, 30.0)}, edges=[], entry_weight=5.0
        )
        b = benefits[regs["hot"]]
        assert b.caller == 100.0 - 30.0
        assert b.callee == 100.0 - 10.0  # callee cost = 2 * 5

    def test_callee_save_cost(self):
        weights = BlockWeights(weights={}, entry_weight=7.0)
        assert callee_save_cost(weights) == 14.0

    def test_prefers_callee_strict(self):
        assert Benefits(caller=5.0, callee=6.0).prefers_callee
        assert not Benefits(caller=6.0, callee=6.0).prefers_callee
        assert not Benefits(caller=7.0, callee=6.0).prefers_callee

    def test_no_calls_means_prefer_caller(self):
        # caller_cost 0 implies benefit_caller >= benefit_callee.
        graph, infos, benefits, regs = make_scenario(
            {"leafy": (50.0, 0.0)}, edges=[], entry_weight=1.0
        )
        assert not benefits[regs["leafy"]].prefers_callee

    def test_infinite_spill_cost_prefers_caller(self):
        b = Benefits(caller=math.inf, callee=math.inf)
        assert not b.prefers_callee  # inf > inf is False


class TestSimplificationKeys:
    def test_delta_key_both_positive(self):
        assert delta_key(Benefits(caller=1000.0, callee=2000.0)) == 1000.0
        assert delta_key(Benefits(caller=1800.0, callee=2000.0)) == 200.0

    def test_delta_key_falls_back_to_max(self):
        assert delta_key(Benefits(caller=-100.0, callee=500.0)) == 500.0
        assert delta_key(Benefits(caller=-100.0, callee=-50.0)) == -50.0

    def test_max_key(self):
        assert max_key(Benefits(caller=1800.0, callee=2000.0)) == 2000.0
        assert max_key(Benefits(caller=-5.0, callee=-9.0)) == -5.0

    def test_paper_figure4_key_disagreement(self):
        # lr_x / lr_y: caller 1800, callee 2000; lr_z: caller 500,
        # callee 1500.  Max ranks x,y over z; delta ranks z highest.
        xy = Benefits(caller=1800.0, callee=2000.0)
        z = Benefits(caller=500.0, callee=1500.0)
        assert max_key(xy) > max_key(z)
        assert delta_key(z) > delta_key(xy)


class TestPreferenceKey:
    def test_caller_cost_when_profitable(self):
        info = LiveRangeInfo(reg=fresh_reg("a"), spill_cost=100.0, caller_cost=30.0)
        b = Benefits(caller=70.0, callee=90.0)
        assert preference_key(info, b) == 30.0

    def test_spill_cost_when_caller_unprofitable(self):
        info = LiveRangeInfo(reg=fresh_reg("b"), spill_cost=100.0, caller_cost=130.0)
        b = Benefits(caller=-30.0, callee=90.0)
        assert preference_key(info, b) == 100.0


class TestPriorityFunction:
    def test_normalizes_by_size(self):
        info = LiveRangeInfo(reg=fresh_reg("c"), spill_cost=100.0)
        info.blocks = {object(), object(), object(), object()}  # type: ignore
        b = Benefits(caller=80.0, callee=40.0)
        assert priority_function(info, b) == 20.0

    def test_size_never_zero(self):
        info = LiveRangeInfo(reg=fresh_reg("d"), spill_cost=10.0)
        b = Benefits(caller=10.0, callee=10.0)
        assert priority_function(info, b) == 10.0
