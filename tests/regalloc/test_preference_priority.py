"""Unit tests for the preference decision and priority-based ordering."""

from repro.analysis.frequency import BlockWeights
from repro.ir.function import BasicBlock
from repro.machine import RegisterConfig, RegisterFile
from repro.regalloc import preference_decisions, priority_order
from repro.regalloc.benefits import compute_benefits
from tests.regalloc.helpers import make_scenario


class TestPreferenceDecision:
    def _scenario(self, n_candidates: int, callee_slots: int, weights=None):
        """n crossing ranges all preferring callee-save at one call."""
        specs = {}
        for i in range(n_candidates):
            # spill cost grows with i; caller cost fixed and small so
            # everyone prefers callee (callee cost is 2.0).
            specs[f"lr{i}"] = (100.0 * (i + 1), 10.0 + i)
        graph, infos, benefits, regs = make_scenario(specs, [], entry_weight=1.0)
        call_block = infos[regs["lr0"]].crossed_calls[0][0]
        rf = RegisterFile(RegisterConfig(4, 2, callee_slots, 1))
        block_weights = weights or BlockWeights(
            weights={call_block: 50.0}, entry_weight=1.0
        )
        forced = preference_decisions(infos, benefits, block_weights, rf)
        return forced, regs, benefits

    def test_no_decision_when_enough_callee_registers(self):
        forced, regs, benefits = self._scenario(n_candidates=2, callee_slots=3)
        assert forced == set()

    def test_excess_candidates_demoted(self):
        forced, regs, benefits = self._scenario(n_candidates=5, callee_slots=2)
        assert len(forced) == 3

    def test_smallest_penalty_demoted_first(self):
        forced, regs, benefits = self._scenario(n_candidates=3, callee_slots=2)
        # Penalty here is the caller cost (benefit_caller > 0), which
        # grows with the index, so lr0 (cheapest demotion) is forced.
        assert forced == {regs["lr0"]}

    def test_non_callee_preferring_ranges_ignored(self):
        graph, infos, benefits, regs = make_scenario(
            {"leafy": (100.0, 0.0)}, [], entry_weight=1.0
        )
        rf = RegisterFile(RegisterConfig(4, 2, 0, 1))
        forced = preference_decisions(
            infos, benefits, BlockWeights(weights={}, entry_weight=1.0), rf
        )
        assert forced == set()

    def test_banks_handled_independently(self):
        from repro.ir import FLOAT
        from tests.regalloc.helpers import fresh_reg
        from repro.regalloc.interference import InterferenceGraph, LiveRangeInfo

        call_block = BasicBlock("call")
        graph = InterferenceGraph()
        infos = {}
        for i in range(3):  # three float candidates, one slot
            reg = fresh_reg(f"f{i}", FLOAT)
            info = LiveRangeInfo(reg=reg, spill_cost=100.0, caller_cost=10.0)
            info.crossed_calls.append((call_block, 0))
            infos[reg] = info
            graph.add_node(reg)
        weights = BlockWeights(weights={call_block: 5.0}, entry_weight=1.0)
        benefits = compute_benefits(infos, weights)
        rf = RegisterFile(RegisterConfig(4, 2, 4, 1))  # plenty int, 1 float
        forced = preference_decisions(infos, benefits, weights, rf)
        assert len(forced) == 2
        assert all(reg.vtype is FLOAT for reg in forced)

    def test_hotter_call_decides_first(self):
        # lr_a crosses hot and cold calls; lr_b,c cross only the hot
        # one.  One callee slot: the hot call demotes the two cheapest.
        hot = BasicBlock("hot")
        cold = BasicBlock("cold")
        from tests.regalloc.helpers import fresh_reg
        from repro.regalloc.interference import InterferenceGraph, LiveRangeInfo

        graph = InterferenceGraph()
        infos = {}
        for name, sites, spill in (
            ("a", [hot, cold], 300.0),
            ("b", [hot], 200.0),
            ("c", [hot], 100.0),
        ):
            reg = fresh_reg(name)
            info = LiveRangeInfo(reg=reg, spill_cost=spill, caller_cost=10.0)
            for s in sites:
                info.crossed_calls.append((s, 0))
            infos[reg] = info
            graph.add_node(reg)
        weights = BlockWeights(weights={hot: 100.0, cold: 1.0}, entry_weight=1.0)
        benefits = compute_benefits(infos, weights)
        rf = RegisterFile(RegisterConfig(4, 2, 1, 1))
        forced = preference_decisions(infos, benefits, weights, rf)
        assert len(forced) == 2


class TestPriorityOrdering:
    SPECS = {
        "big": (400.0, 4.0),
        "mid": (200.0, 4.0),
        "small": (50.0, 4.0),
    }

    def test_sorting_puts_highest_priority_on_top(self):
        graph, infos, benefits, regs = make_scenario(self.SPECS, [])
        rf = RegisterFile(RegisterConfig(2, 1, 1, 1))
        result = priority_order(graph, infos, benefits, rf, "sorting")
        assert result.stack[-1].name == "big"
        assert result.stack[0].name == "small"
        assert not result.spilled

    def test_remove_unconstrained_keeps_constrained_sorted(self):
        # A 4-clique with 3 registers: everyone is constrained, so the
        # stack is purely priority-sorted (no unconstrained prefix).
        specs = {
            "a": (400.0, 4.0),
            "b": (300.0, 4.0),
            "c": (200.0, 4.0),
            "d": (100.0, 4.0),
        }
        edges = [(x, y) for x in specs for y in specs if x < y]
        graph, infos, benefits, regs = make_scenario(specs, edges)
        rf = RegisterFile(RegisterConfig(2, 1, 1, 1))  # 3 int regs
        result = priority_order(graph, infos, benefits, rf, "remove_unconstrained")
        assert result.stack[-1].name == "a"

    def test_remove_unconstrained_peels_iteratively(self):
        # Chain a-b-c with 2 registers: all eventually unconstrained.
        graph, infos, benefits, regs = make_scenario(
            self.SPECS, [("big", "mid"), ("mid", "small")]
        )
        rf = RegisterFile(RegisterConfig(1, 1, 1, 1))
        result = priority_order(graph, infos, benefits, rf, "remove_unconstrained")
        assert len(result.stack) == 3

    def test_sort_unconstrained_orders_by_priority(self):
        graph, infos, benefits, regs = make_scenario(self.SPECS, [])
        rf = RegisterFile(RegisterConfig(4, 1, 0, 1))
        result = priority_order(graph, infos, benefits, rf, "sort_unconstrained")
        assert [r.name for r in result.stack] == ["small", "mid", "big"]

    def test_unknown_strategy_rejected(self):
        graph, infos, benefits, regs = make_scenario(self.SPECS, [])
        rf = RegisterFile(RegisterConfig(2, 1, 1, 1))
        import pytest

        with pytest.raises(ValueError, match="unknown priority strategy"):
            priority_order(graph, infos, benefits, rf, "bogus")

    def test_priority_normalized_by_size(self):
        # Same savings but one range spans many blocks: it must rank
        # lower than the compact one.
        graph, infos, benefits, regs = make_scenario(
            {"wide": (400.0, 4.0), "tight": (400.0, 4.0)}, []
        )
        infos[regs["wide"]].blocks = {BasicBlock(f"b{i}") for i in range(8)}
        infos[regs["tight"]].blocks = {BasicBlock("one")}
        rf = RegisterFile(RegisterConfig(2, 1, 1, 1))
        result = priority_order(graph, infos, benefits, rf, "sorting")
        assert result.stack[-1].name == "tight"
