"""Unit tests for the spill/save pseudo-instructions themselves."""

from repro.ir import INT, VReg
from repro.machine import RegisterConfig, RegisterFile
from repro.regalloc.spillinstr import OverheadKind, SpillLoad, SpillStore


def phys():
    return RegisterFile(RegisterConfig(2, 1, 1, 1)).bank(INT).caller[0]


class TestVRegForm:
    def test_load_defs_and_rewrite(self):
        reg = VReg(0, INT, "t")
        other = VReg(1, INT, "u")
        load = SpillLoad(reg, 3, OverheadKind.SPILL)
        assert load.defs() == (reg,)
        assert load.uses() == ()
        load.replace_defs({reg: other})
        assert load.defs() == (other,)

    def test_store_uses_and_rewrite(self):
        reg = VReg(0, INT, "t")
        other = VReg(1, INT, "u")
        store = SpillStore(5, reg, OverheadKind.SPILL)
        assert store.uses() == (reg,)
        assert store.defs() == ()
        store.replace_uses({reg: other})
        assert store.uses() == (other,)

    def test_not_terminators(self):
        reg = VReg(0, INT)
        assert not SpillLoad(reg, 0, OverheadKind.SPILL).is_terminator
        assert not SpillStore(0, reg, OverheadKind.SPILL).is_terminator


class TestPhysRegForm:
    def test_invisible_to_liveness(self):
        # Save/restore code targets physical registers and must not
        # surface defs/uses to the dataflow machinery.
        load = SpillLoad(phys(), 1, OverheadKind.CALLER_SAVE)
        store = SpillStore(1, phys(), OverheadKind.CALLEE_SAVE)
        assert load.defs() == ()
        assert store.uses() == ()

    def test_rewrite_is_noop(self):
        load = SpillLoad(phys(), 1, OverheadKind.CALLER_SAVE)
        load.replace_defs({})
        assert load.dst == phys()

    def test_repr_carries_kind(self):
        text = repr(SpillLoad(phys(), 7, OverheadKind.CALLER_SAVE))
        assert "slot7" in text
        assert "caller_save" in text
        text = repr(SpillStore(9, phys(), OverheadKind.CALLEE_SAVE))
        assert "slot9" in text
        assert "callee_save" in text


class TestOverheadKind:
    def test_three_kinds(self):
        assert {k.value for k in OverheadKind} == {
            "spill",
            "caller_save",
            "callee_save",
        }
