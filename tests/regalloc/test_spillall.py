"""The spill-everywhere last-resort allocator."""

import pytest

from repro.machine.mips import FULL_CONFIG, MIN_CONFIG, register_file
from repro.profile import run_allocated, run_program
from repro.regalloc import allocate_program, verify_allocation
from repro.regalloc.options import PRESETS, AllocatorOptions
from repro.workloads import compile_workload
from tests.conftest import assert_same_globals


class TestOptions:
    def test_preset_registered(self):
        options = PRESETS["spillall"]()
        assert options.kind == "spillall"
        assert options.label == "spillall"
        assert not options.coalesce

    def test_spillall_takes_no_enhancements(self):
        with pytest.raises(ValueError):
            AllocatorOptions(kind="spillall", sc=True)
        with pytest.raises(ValueError):
            AllocatorOptions(kind="spillall", coalesce=True)


class TestSpillEverywhere:
    @pytest.mark.parametrize("config", [MIN_CONFIG, FULL_CONFIG])
    def test_verifies_on_real_workload(self, config):
        compiled = compile_workload("li")
        allocation = allocate_program(
            compiled.program,
            register_file(config),
            AllocatorOptions.spill_everywhere(),
            compiled.dynamic_weights,
            cache=compiled.analyses,
        )
        verify_allocation(allocation)

    def test_every_original_range_spilled(self, small_call_program):
        allocation = allocate_program(
            small_call_program,
            register_file(MIN_CONFIG),
            AllocatorOptions.spill_everywhere(),
        )
        for fa in allocation.functions.values():
            # Iteration 1 spills every original (finite-cost) range in
            # one round; iteration 2 colors the spill plumbing.  A
            # third iteration would mean something original survived.
            assert fa.iterations == 2
            assert fa.spilled, "every function here has live ranges"
            assert fa.frame_slots >= len(fa.spilled)
            spilled = set(fa.spilled)
            # A spilled parameter keeps a short entry-range register
            # (it arrives in one before the store to its slot); nothing
            # else may be both spilled and register-resident.
            assert spilled & set(fa.assignment) <= set(fa.func.params)

    def test_differential_execution(self, small_call_program):
        baseline = run_program(small_call_program, fuel=3_000_000)
        allocation = allocate_program(
            small_call_program,
            register_file(MIN_CONFIG),
            AllocatorOptions.spill_everywhere(),
            baseline.profile.weights,
        )
        verify_allocation(allocation)
        mech = run_allocated(allocation, fuel=30_000_000)
        assert_same_globals(baseline.globals_state, mech.globals_state)
        assert mech.return_value == baseline.return_value

    def test_overhead_independent_of_register_count(self):
        from repro.eval.overhead import program_overhead

        compiled = compile_workload("compress")
        totals = []
        for config in (MIN_CONFIG, FULL_CONFIG):
            allocation = allocate_program(
                compiled.program,
                register_file(config),
                AllocatorOptions.spill_everywhere(),
                compiled.dynamic_weights,
                cache=compiled.analyses,
            )
            totals.append(program_overhead(allocation, compiled.profile).total)
        assert totals[0] == totals[1]

    def test_resilient_spillall_is_single_rung(self, small_call_program):
        allocation = allocate_program(
            small_call_program,
            register_file(MIN_CONFIG),
            AllocatorOptions.spill_everywhere(),
            resilient=True,
        )
        assert allocation.resilience.rung == "primary"
        assert allocation.resilience.attempts == 1
