"""Unit tests for web (live range) construction."""

from repro.ir import INT, verify_program
from repro.lang import compile_source
from repro.profile import run_program
from repro.regalloc import build_webs
from tests.conftest import assert_same_globals


def webs_for(source: str, func_name: str = "main"):
    program = compile_source(source)
    func = program.function(func_name)
    webs = build_webs(func)
    return program, func, webs


class TestSplitting:
    def test_disjoint_reuse_splits_into_webs(self):
        # x is used in two completely independent regions; Chaitin-style
        # allocation treats them as separate live ranges.
        program, func, webs = webs_for(
            """
            int out[2];
            void main() {
                int x = 1;
                out[0] = x + 1;
                x = 50;
                out[1] = x + 2;
            }
            """
        )
        x_webs = [w for w in webs if w.reg.name == "x"]
        assert len(x_webs) == 2

    def test_loop_carried_variable_is_one_web(self):
        program, func, webs = webs_for(
            """
            int out[1];
            void main() {
                int acc = 0;
                for (int i = 0; i < 4; i = i + 1) {
                    acc = acc + i;
                }
                out[0] = acc;
            }
            """
        )
        acc_webs = [w for w in webs if w.reg.name == "acc"]
        # The init def, the loop update and the final use all connect.
        assert len(acc_webs) == 1
        assert len(acc_webs[0].def_sites) >= 2

    def test_branch_defs_merge_at_join(self):
        program, func, webs = webs_for(
            """
            int out[1];
            void main() {
                int r = 0;
                if (out[0] > 0) { r = 1; }
                out[0] = r;
            }
            """
        )
        # The init def and the branch def both reach the final use:
        # one web with two definitions.
        r_webs = [w for w in webs if w.reg.name == "r"]
        assert len(r_webs) == 1
        assert len(r_webs[0].def_sites) == 2

    def test_dead_initializer_forms_own_web(self):
        program, func, webs = webs_for(
            """
            int out[1];
            void main() {
                int r = 0;
                if (out[0] > 0) { r = 1; } else { r = 2; }
                out[0] = r;
            }
            """
        )
        # Both branches kill the init: the dead init def is its own
        # web, the two branch defs merge at the join's use.
        r_webs = [w for w in webs if w.reg.name == "r"]
        assert len(r_webs) == 2
        sizes = sorted(len(w.def_sites) for w in r_webs)
        assert sizes == [1, 2]


class TestParameters:
    def test_param_keeps_register(self):
        program = compile_source(
            """
            int f(int a) { return a + 1; }
            void main() { int x = f(3); }
            """
        )
        func = program.function("f")
        param = func.params[0]
        build_webs(func)
        assert func.params[0] is param

    def test_param_reassignment_splits(self):
        program = compile_source(
            """
            int out[1];
            int f(int a) {
                int first = a * 2;
                a = 7;
                return first + a;
            }
            void main() { out[0] = f(3); }
            """
        )
        func = program.function("f")
        webs = build_webs(func)
        a_webs = [w for w in webs if w.reg.name == "a"]
        assert len(a_webs) == 2
        # The web containing the entry definition keeps the parameter.
        entry_webs = [w for w in a_webs if (func.entry, -1) in w.def_sites]
        assert len(entry_webs) == 1
        assert entry_webs[0].reg is func.params[0]


class TestSemanticsPreserved:
    def test_renaming_preserves_execution(self):
        source = """
        int out[4];
        int helper(int v) { return v * 3; }
        void main() {
            int x = 2;
            out[0] = helper(x);
            x = 10;
            out[1] = helper(x);
            int y = 0;
            for (int i = 0; i < 5; i = i + 1) { y = y + i; }
            out[2] = y;
        }
        """
        program = compile_source(source)
        before = run_program(program).globals_state
        for func in program.functions.values():
            build_webs(func)
        verify_program(program)
        after = run_program(program).globals_state
        assert_same_globals(before, after)

    def test_idempotent(self):
        source = """
        int out[1];
        void main() {
            int x = 1;
            out[0] = x;
            x = 2;
            out[0] = out[0] + x;
        }
        """
        program = compile_source(source)
        func = program.function("main")
        first = build_webs(func)
        second = build_webs(func)
        # After renaming, every register already is one web.
        assert len(second) == len(first)
