"""Tests for the DOT exporter."""

from repro.analysis.frequency import static_weights
from repro.lang import compile_source
from repro.machine import RegisterConfig, register_file
from repro.regalloc import (
    AllocatorOptions,
    allocate_function,
    build_interference,
    build_webs,
)
from repro.regalloc.dot import to_dot
from tests.conftest import SMALL_CALL_SOURCE


def build(source=SMALL_CALL_SOURCE):
    program = compile_source(source)
    func = program.function("main")
    build_webs(func)
    graph, infos = build_interference(func, static_weights(func), set())
    return func, graph, infos


class TestDotExport:
    def test_valid_dot_structure(self):
        func, graph, infos = build()
        text = to_dot(graph, infos)
        assert text.startswith('graph "interference" {')
        assert text.endswith("}")
        assert text.count("--") > 0

    def test_every_node_present(self):
        func, graph, infos = build()
        text = to_dot(graph, infos)
        for reg in graph.nodes:
            assert f"n{reg.id} [" in text

    def test_edges_emitted_once(self):
        func, graph, infos = build()
        text = to_dot(graph)
        edges = [l for l in text.splitlines() if " -- " in l]
        assert len(edges) == len(set(edges))
        total_degree = sum(graph.degree(r) for r in graph.nodes)
        assert len(edges) == total_degree // 2

    def test_assignment_colors(self):
        program = compile_source(SMALL_CALL_SOURCE)
        func = program.function("main")
        rf = register_file(RegisterConfig(6, 4, 2, 2))
        fa = allocate_function(
            func, rf, static_weights(func), AllocatorOptions.base_chaitin()
        )
        graph, infos = build_interference(fa.func, static_weights(fa.func), set())
        text = to_dot(graph, infos, fa.assignment, title="main")
        assert 'graph "main"' in text
        assert "#8fd18f" in text or "#7eb6ff" in text  # some register color
        assert "$i" in text  # physical register names in labels

    def test_labels_carry_costs(self):
        func, graph, infos = build()
        text = to_dot(graph, infos)
        assert "spill=" in text
        assert "calls=" in text
