"""Tests for interprocedural save elision (IPRA extension)."""

import pytest

from repro.eval import program_overhead
from repro.lang import compile_source
from repro.machine import RegisterConfig, register_file
from repro.profile import run_allocated, run_program
from repro.regalloc import AllocatorOptions, allocate_program
from tests.conftest import assert_same_globals

#: A leaf that needs very few registers; the caller's loop state sits
#: in caller-save registers the leaf never touches.
ELISION_SOURCE = """
int out[1];
int tiny(int x) { return x + 1; }
void main() {
    int a = 0;
    int b = 1;
    int c = 2;
    for (int i = 0; i < 30; i = i + 1) {
        a = a + tiny(i);
        b = b + a % 7;
        c = c + b % 5;
    }
    out[0] = a + b + c;
}
"""

CONFIG = RegisterConfig(8, 4, 0, 0)  # no callee-save: elision or pay


def allocate(source, ipra, config=CONFIG, options=None):
    program = compile_source(source)
    profile = run_program(program).profile
    allocation = allocate_program(
        program,
        register_file(config),
        options or AllocatorOptions.improved_chaitin(),
        profile.weights,
        ipra=ipra,
    )
    return program, profile, allocation


class TestSummaries:
    def test_summaries_recorded(self):
        program, profile, allocation = allocate(ELISION_SOURCE, ipra=True)
        assert allocation.clobbers is not None
        assert set(allocation.clobbers) == {"tiny", "main"}
        # The leaf's summary is a strict subset of all caller-saves.
        all_caller = {
            p for p in allocation.regfile.all_registers() if p.is_caller_save
        }
        assert allocation.clobbers["tiny"] < all_caller

    def test_caller_summary_includes_callees(self):
        source = """
        int out[1];
        int leaf(int x) { return x * 2; }
        int mid(int x) { return leaf(x) + 1; }
        void main() { out[0] = mid(3); }
        """
        program, profile, allocation = allocate(source, ipra=True)
        assert allocation.clobbers["leaf"] <= allocation.clobbers["mid"]

    def test_recursive_functions_conservative(self):
        source = """
        int out[1];
        int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
        void main() { out[0] = fact(6); }
        """
        program, profile, allocation = allocate(source, ipra=True)
        all_caller = frozenset(
            p for p in allocation.regfile.all_registers() if p.is_caller_save
        )
        assert allocation.clobbers["fact"] == all_caller

    def test_plain_allocation_has_no_summaries(self):
        program, profile, allocation = allocate(ELISION_SOURCE, ipra=False)
        assert allocation.clobbers is None


class TestElisionEffect:
    def test_reduces_caller_save_overhead(self):
        program, profile, plain = allocate(ELISION_SOURCE, ipra=False)
        _, _, with_ipra = allocate(ELISION_SOURCE, ipra=True)
        plain_cost = program_overhead(plain, profile)
        ipra_cost = program_overhead(with_ipra, profile)
        assert ipra_cost.caller_save < plain_cost.caller_save
        assert ipra_cost.spill == plain_cost.spill  # decisions unchanged

    def test_semantics_preserved(self):
        program, profile, allocation = allocate(ELISION_SOURCE, ipra=True)
        base = run_program(program)
        mech = run_allocated(allocation)
        assert_same_globals(base.globals_state, mech.globals_state)

    def test_recursion_still_correct(self):
        source = """
        int out[1];
        int fib(int n) {
            if (n < 2) { return n; }
            int a = fib(n - 1);
            return a + fib(n - 2);
        }
        void main() { out[0] = fib(11); }
        """
        program, profile, allocation = allocate(
            source, ipra=True, config=RegisterConfig(5, 2, 1, 1)
        )
        mech = run_allocated(allocation)
        assert mech.globals_state["out"][0] == 89

    @pytest.mark.parametrize(
        "name", ["sc", "ear", "li", "eqntott", "compress"]
    )
    def test_workload_equivalence_with_ipra(self, name):
        from repro.workloads import compile_workload

        compiled = compile_workload(name)
        rf = register_file(RegisterConfig(6, 4, 2, 2))
        allocation = allocate_program(
            compiled.program,
            rf,
            AllocatorOptions.improved_chaitin(),
            compiled.dynamic_weights,
            ipra=True,
        )
        mech = run_allocated(allocation)
        assert_same_globals(compiled.baseline.globals_state, mech.globals_state)

    def test_ipra_never_hurts(self):
        from repro.workloads import compile_workload

        for name in ("sc", "gcc"):
            compiled = compile_workload(name)
            rf = register_file(RegisterConfig(6, 4, 0, 0))
            options = AllocatorOptions.improved_chaitin()
            plain = allocate_program(
                compiled.program, rf, options, compiled.dynamic_weights
            )
            with_ipra = allocate_program(
                compiled.program,
                rf,
                options,
                compiled.dynamic_weights,
                ipra=True,
            )
            assert (
                program_overhead(with_ipra, compiled.profile).total
                <= program_overhead(plain, compiled.profile).total
            )
