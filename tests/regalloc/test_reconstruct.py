"""Tests for graph reconstruction (the framework's incremental path).

The invariant: reconstruction after spill-code insertion must produce
exactly the graph and cost table a full rebuild would, so allocation
with ``reconstruct=True`` is bit-identical to the default.
"""

import math

import pytest

from repro.analysis.frequency import static_weights
from repro.lang import compile_source
from repro.machine import RegisterConfig, register_file
from repro.profile import run_allocated, run_program
from repro.regalloc import (
    AllocatorOptions,
    SlotAllocator,
    allocate_program,
    build_interference,
    build_webs,
    insert_spill_code,
    reconstruct_interference,
)
from repro.workloads.generator import random_program
from tests.conftest import SMALL_CALL_SOURCE, assert_same_globals

PRESSURE_SOURCE = """
int out[2];
int helper(int x, int y) { return x * y + 1; }
void main() {
    int a = 1; int b = 2; int c = 3; int d = 4; int e = 5;
    int acc = 0;
    for (int i = 0; i < 8; i = i + 1) {
        acc = acc + helper(a + i, b) + c * d - e;
        a = a + 1;
    }
    out[0] = acc + a + b + c + d + e;
}
"""


def graphs_equal(graph_a, infos_a, graph_b, infos_b) -> None:
    def key(reg):
        return reg.id

    nodes_a = sorted(graph_a.nodes, key=key)
    nodes_b = sorted(graph_b.nodes, key=key)
    assert [n.id for n in nodes_a] == [n.id for n in nodes_b]
    for reg in nodes_a:
        assert {n.id for n in graph_a.neighbors(reg)} == {
            n.id for n in graph_b.neighbors(reg)
        }, f"adjacency differs at {reg}"
        ia, ib = infos_a[reg], infos_b[reg]
        if math.isinf(ia.spill_cost):
            assert math.isinf(ib.spill_cost)
        else:
            assert ia.spill_cost == pytest.approx(ib.spill_cost)
        assert ia.caller_cost == pytest.approx(ib.caller_cost)
        assert sorted(
            (b.name, i) for b, i in ia.crossed_calls
        ) == sorted((b.name, i) for b, i in ib.crossed_calls)


def spill_and_compare(source: str, spill_names):
    program = compile_source(source)
    func = program.function("main")
    build_webs(func)
    weights = static_weights(func)
    graph, infos = build_interference(func, weights, set())
    victims = [
        reg for reg in graph.nodes if reg.name in spill_names
    ]
    assert victims, "no spill victims matched"
    temps = set()
    insert_spill_code(func, victims, SlotAllocator(), temps)
    reconstruct_interference(graph, infos, func, weights, victims, temps)
    rebuilt_graph, rebuilt_infos = build_interference(func, weights, temps)
    graphs_equal(graph, infos, rebuilt_graph, rebuilt_infos)


class TestReconstructionEquivalence:
    def test_single_spill_matches_rebuild(self):
        spill_and_compare(PRESSURE_SOURCE, {"acc"})

    def test_param_heavy_spill_matches_rebuild(self):
        spill_and_compare(PRESSURE_SOURCE, {"a", "c", "e"})

    def test_call_crossing_spill_matches_rebuild(self):
        # Spilling a range that crossed calls must keep every other
        # range's crossed-call set intact (re-indexed).
        spill_and_compare(SMALL_CALL_SOURCE, {"total"})

    @pytest.mark.parametrize("seed", range(12))
    def test_random_programs_match_rebuild(self, seed):
        from repro.lang.lower import compile_source as cs

        program = random_program(seed)
        for func in program.functions.values():
            build_webs(func)
            weights = static_weights(func)
            graph, infos = build_interference(func, weights, set())
            nodes = sorted(graph.nodes, key=lambda r: r.id)
            if not nodes:
                continue
            victims = nodes[:: max(len(nodes) // 3, 1)][:3]
            temps = set()
            insert_spill_code(func, victims, SlotAllocator(), temps)
            reconstruct_interference(graph, infos, func, weights, victims, temps)
            rebuilt_graph, rebuilt_infos = build_interference(func, weights, temps)
            graphs_equal(graph, infos, rebuilt_graph, rebuilt_infos)


class TestReconstructingAllocator:
    @pytest.mark.parametrize(
        "options",
        [
            AllocatorOptions.base_chaitin(),
            AllocatorOptions.improved_chaitin(),
            AllocatorOptions.priority_based(),
        ],
        ids=lambda o: o.label,
    )
    def test_identical_assignments(self, options):
        program = compile_source(PRESSURE_SOURCE)
        rf = register_file(RegisterConfig(3, 2, 1, 1))
        plain = allocate_program(program, rf, options)
        incremental = allocate_program(program, rf, options, reconstruct=True)
        for name in plain.functions:
            a = {r.id: p.name for r, p in plain.functions[name].assignment.items()}
            b = {
                r.id: p.name
                for r, p in incremental.functions[name].assignment.items()
            }
            assert a == b

    def test_semantics_preserved(self):
        program = compile_source(PRESSURE_SOURCE)
        base = run_program(program)
        rf = register_file(RegisterConfig(3, 2, 1, 1))
        allocation = allocate_program(
            program, rf, AllocatorOptions.improved_chaitin(), reconstruct=True
        )
        mech = run_allocated(allocation)
        assert_same_globals(base.globals_state, mech.globals_state)

    def test_cbh_falls_back_to_rebuild(self):
        program = compile_source(PRESSURE_SOURCE)
        base = run_program(program)
        rf = register_file(RegisterConfig(3, 2, 0, 1))
        allocation = allocate_program(
            program, rf, AllocatorOptions.cbh(), reconstruct=True
        )
        mech = run_allocated(allocation)
        assert_same_globals(base.globals_state, mech.globals_state)
