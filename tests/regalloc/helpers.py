"""Helpers for constructing hand-made allocation scenarios.

The ordering/assignment phases operate on an interference graph plus
per-live-range cost records, so the paper's worked examples (Figures
3, 4, 5 and 8) can be reconstructed exactly without real programs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.analysis.frequency import BlockWeights
from repro.ir import INT, ValueType, VReg
from repro.ir.function import BasicBlock
from repro.regalloc.benefits import Benefits, compute_benefits
from repro.regalloc.interference import InterferenceGraph, LiveRangeInfo

_COUNTER = [0]


def fresh_reg(name: str, vtype: ValueType = INT) -> VReg:
    _COUNTER[0] += 1
    return VReg(_COUNTER[0], vtype, name)


def make_scenario(
    specs: Dict[str, Tuple[float, float]],
    edges: Iterable[Tuple[str, str]],
    entry_weight: float = 1.0,
    call_block: Optional[BasicBlock] = None,
):
    """Build (graph, infos, benefits, regs) from a compact spec.

    ``specs`` maps a live-range name to ``(spill_cost, caller_cost)``;
    the callee-save cost is ``2 * entry_weight``.  Live ranges with a
    non-zero caller cost are marked as crossing one shared call site.
    """
    call_block = call_block or BasicBlock("call_site")
    graph = InterferenceGraph()
    infos: Dict[VReg, LiveRangeInfo] = {}
    regs: Dict[str, VReg] = {}
    for name, (spill_cost, caller_cost) in specs.items():
        reg = fresh_reg(name)
        regs[name] = reg
        graph.add_node(reg)
        info = LiveRangeInfo(reg=reg, spill_cost=spill_cost, caller_cost=caller_cost)
        if caller_cost > 0:
            info.crossed_calls.append((call_block, 0))
        infos[reg] = info
    for a, b in edges:
        graph.add_edge(regs[a], regs[b])
    weights = BlockWeights(weights={call_block: 1.0}, entry_weight=entry_weight)
    benefits = compute_benefits(infos, weights)
    return graph, infos, benefits, regs


def from_benefits(
    specs: Dict[str, Tuple[float, float]],
    edges: Iterable[Tuple[str, str]],
    callee_cost: float,
):
    """Build a scenario directly from (benefit_caller, benefit_callee).

    The paper's figures state benefits, not costs; recover
    ``spill_cost = benefit_callee + callee_cost`` and
    ``caller_cost = spill_cost - benefit_caller``.
    """
    cost_specs = {}
    for name, (b_caller, b_callee) in specs.items():
        spill_cost = b_callee + callee_cost
        caller_cost = spill_cost - b_caller
        cost_specs[name] = (spill_cost, caller_cost)
    return make_scenario(cost_specs, edges, entry_weight=callee_cost / 2.0)
