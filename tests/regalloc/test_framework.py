"""Integration tests for the allocation framework driver."""

import pytest

from repro.analysis.frequency import static_weights
from repro.ir import clone_function
from repro.lang import compile_source
from repro.machine import RegisterConfig, register_file
from repro.profile import run_allocated, run_program
from repro.regalloc import (
    AllocatorOptions,
    allocate_function,
    allocate_program,
)
from tests.conftest import SMALL_CALL_SOURCE, assert_same_globals

ALL_OPTIONS = [
    AllocatorOptions.base_chaitin(),
    AllocatorOptions.optimistic_coloring(),
    AllocatorOptions.improved_chaitin(),
    AllocatorOptions.improved_optimistic(),
    AllocatorOptions.priority_based(),
    AllocatorOptions.cbh(),
]


class TestAllocateFunction:
    def test_every_register_assigned(self):
        program = compile_source(SMALL_CALL_SOURCE)
        func = program.function("main")
        rf = register_file(RegisterConfig(6, 4, 2, 2))
        fa = allocate_function(func, rf, static_weights(func))
        for instr in fa.func.instructions():
            for reg in list(instr.uses()) + list(instr.defs()):
                assert reg in fa.assignment, f"{reg} unassigned"

    def test_interfering_ranges_get_distinct_registers(self):
        program = compile_source(SMALL_CALL_SOURCE)
        func = program.function("main")
        rf = register_file(RegisterConfig(6, 4, 2, 2))
        fa = allocate_function(func, rf, static_weights(func))
        from repro.regalloc import build_interference

        graph, _ = build_interference(fa.func, static_weights(fa.func), set())
        for reg in graph.nodes:
            if reg not in fa.assignment:
                continue
            for neighbor in graph.neighbors(reg):
                if neighbor in fa.assignment:
                    assert fa.assignment[reg] != fa.assignment[neighbor]

    def test_iteration_count_reported(self):
        program = compile_source(SMALL_CALL_SOURCE)
        func = program.function("main")
        rf = register_file(RegisterConfig(3, 2, 0, 1))
        fa = allocate_function(func, rf, static_weights(func))
        assert fa.iterations >= 1

    def test_pressure_forces_spills(self):
        source = """
        int out[1];
        void main() {
            int a = 1; int b = 2; int c = 3; int d = 4;
            int e = 5; int f = 6; int g = 7;
            out[0] = a + b + c + d + e + f + g
                   + a * b + c * d + e * f
                   + a * c + b * d + e * g;
        }
        """
        program = compile_source(source)
        func = program.function("main")
        rf = register_file(RegisterConfig(2, 1, 1, 1))  # 3 int regs
        fa = allocate_function(func, rf, static_weights(func))
        assert fa.spilled
        assert fa.frame_slots > 0


class TestAllocateProgram:
    def test_original_program_untouched(self):
        program = compile_source(SMALL_CALL_SOURCE)
        sizes = {n: f.size() for n, f in program.functions.items()}
        rf = register_file(RegisterConfig(6, 4, 0, 0))
        allocate_program(program, rf, AllocatorOptions.base_chaitin())
        assert {n: f.size() for n, f in program.functions.items()} == sizes

    @pytest.mark.parametrize(
        "options", ALL_OPTIONS, ids=lambda o: o.label
    )
    def test_all_allocators_preserve_semantics(self, options):
        program = compile_source(SMALL_CALL_SOURCE)
        base = run_program(program)
        for config in [(6, 4, 0, 0), (3, 2, 2, 2), (8, 6, 4, 4)]:
            rf = register_file(RegisterConfig(*config))
            allocation = allocate_program(program, rf, options)
            mech = run_allocated(allocation)
            assert_same_globals(base.globals_state, mech.globals_state)

    def test_dynamic_weights_accepted(self):
        program = compile_source(SMALL_CALL_SOURCE)
        profile = run_program(program).profile
        rf = register_file(RegisterConfig(6, 4, 2, 2))
        allocation = allocate_program(
            program, rf, AllocatorOptions.improved_chaitin(), profile.weights
        )
        mech = run_allocated(allocation)
        base = run_program(program)
        assert_same_globals(base.globals_state, mech.globals_state)

    def test_deterministic(self):
        program = compile_source(SMALL_CALL_SOURCE)
        rf = register_file(RegisterConfig(5, 3, 2, 2))
        options = AllocatorOptions.improved_chaitin()
        a = allocate_program(program, rf, options)
        b = allocate_program(program, rf, options)
        named_a = {
            (n, r.id): p.name
            for n, fa in a.functions.items()
            for r, p in fa.assignment.items()
        }
        named_b = {
            (n, r.id): p.name
            for n, fa in b.functions.items()
            for r, p in fa.assignment.items()
        }
        assert named_a == named_b


class TestOptionsValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            AllocatorOptions(kind="mystery")

    def test_cbh_refuses_enhancements(self):
        with pytest.raises(ValueError, match="CBH"):
            AllocatorOptions(kind="cbh", sc=True)

    def test_priority_refuses_optimistic(self):
        with pytest.raises(ValueError, match="priority"):
            AllocatorOptions(kind="priority", optimistic=True)

    def test_labels(self):
        assert AllocatorOptions.base_chaitin().label == "chaitin"
        assert AllocatorOptions.improved_chaitin().label == "chaitin+SC+BS+PR"
        assert AllocatorOptions.improved_optimistic().label == "optimistic+SC+BS+PR"
        assert AllocatorOptions.cbh().label == "CBH"
        assert "sorting" in AllocatorOptions.priority_based().label

    def test_with_replaces_fields(self):
        options = AllocatorOptions.improved_chaitin().with_(callee_model="first")
        assert options.callee_model == "first"
        assert options.sc
