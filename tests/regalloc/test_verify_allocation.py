"""Mutation tests for the independent allocation verifier.

A verifier that never fires is worse than none: each test here takes
a known-good allocation, corrupts it the way a specific allocator bug
would (conflicting assignment, dropped caller-save restore, skewed
spill slot, missing callee-save bookkeeping) and asserts the verifier
raises the matching error class — with the function/block context a
bug report needs.
"""

import pytest

from repro.analysis.liveness import compute_liveness
from repro.ir.instructions import Copy
from repro.lang import compile_source
from repro.machine import RegisterConfig, register_file
from repro.profile import run_program
from repro.regalloc import (
    PRESETS,
    AllocationVerificationError,
    CalleeSaveError,
    CallerSaveError,
    RegisterConflictError,
    SpillSlotError,
    UnassignedLiveRangeError,
    allocate_program,
    verify_allocation,
)
from repro.regalloc.spillinstr import OverheadKind, SpillLoad, SpillStore

# Enough integer pressure that allocation under a (4,3,2,2) file needs
# spill code, caller-save code around the call and callee-save
# registers — every ingredient the mutations below corrupt.
SOURCE = """
int g[8];

int helper(int a, int b) {
    int t = (a * 3 + b) % 65521;
    return (t + a * b) % 65521;
}

int main() {
    int a = g[0] + 1;
    int b = g[1] + 2;
    int c = g[2] + 3;
    int d = g[3] + 4;
    int e = g[4] + 5;
    int f = g[5] + 6;
    int s = 0;
    for (int i = 0; i < 10; i = i + 1) {
        s = (s + helper(a, b)) % 65521;
        s = (s + a * b + c * d + e * f + i) % 65521;
        a = (a + c + 1) % 65521;
        b = (b + d + 2) % 65521;
        c = (c + e + 3) % 65521;
        d = (d + f + 4) % 65521;
        e = (e + s + 5) % 65521;
        f = (f + a + 6) % 65521;
    }
    g[6] = s;
    return s;
}
"""

CONFIG = RegisterConfig(4, 3, 2, 2)


def fresh_allocation(preset="improved"):
    """A brand-new allocation each call, safe to mutate."""
    program = compile_source(SOURCE, name="verifyme")
    weights = run_program(program).profile.weights
    return allocate_program(
        program, register_file(CONFIG), PRESETS[preset](), weights
    )


def overhead_sites(fa, cls, kind):
    """Every (block, index, instr) for overhead instrs of one kind."""
    return [
        (block, index, instr)
        for block in fa.func.blocks
        for index, instr in enumerate(block.instrs)
        if isinstance(instr, cls) and instr.kind is kind
    ]


@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_clean_allocation_passes(preset):
    verify_allocation(fresh_allocation(preset))


def test_conflicting_register_detected():
    allocation = fresh_allocation()
    fa = allocation.functions["main"]
    liveness = compute_liveness(fa.func)
    mutated = False
    for block in fa.func.blocks:
        for instr, live_after in liveness.live_across(block):
            copy_src = instr.src if isinstance(instr, Copy) else None
            for dst in instr.defs():
                for live in live_after:
                    if live is dst or live is copy_src:
                        continue
                    if (
                        live.vtype is dst.vtype
                        and fa.assignment[live] != fa.assignment[dst]
                    ):
                        # The bug: dst handed the register of a value
                        # that is still live after the definition.
                        fa.assignment[dst] = fa.assignment[live]
                        mutated = True
                        break
                if mutated:
                    break
            if mutated:
                break
        if mutated:
            break
    assert mutated, "test program has no overlapping live ranges"
    with pytest.raises(RegisterConflictError) as excinfo:
        verify_allocation(allocation)
    assert excinfo.value.function == "main"
    assert excinfo.value.check == "register-conflict"


def test_dropped_caller_save_restore_detected():
    allocation = fresh_allocation()
    fa = allocation.functions["main"]
    sites = overhead_sites(fa, SpillLoad, OverheadKind.CALLER_SAVE)
    assert sites, "test program has no caller-save restores"
    block, index, _ = sites[0]
    del block.instrs[index]
    with pytest.raises(CallerSaveError) as excinfo:
        verify_allocation(allocation)
    assert excinfo.value.function == "main"
    assert excinfo.value.block == block.name


def test_dropped_caller_save_save_detected():
    allocation = fresh_allocation()
    fa = allocation.functions["main"]
    sites = overhead_sites(fa, SpillStore, OverheadKind.CALLER_SAVE)
    assert sites, "test program has no caller-save saves"
    block, index, _ = sites[0]
    del block.instrs[index]
    with pytest.raises(CallerSaveError):
        verify_allocation(allocation)


def test_skewed_spill_slot_detected():
    allocation = fresh_allocation()
    fa = allocation.functions["main"]
    sites = overhead_sites(fa, SpillLoad, OverheadKind.SPILL)
    assert sites, "test program has no spill reloads"
    block, index, instr = sites[0]
    instr.slot = fa.frame_slots + 3  # off the end of the frame
    with pytest.raises(SpillSlotError) as excinfo:
        verify_allocation(allocation)
    assert excinfo.value.function == "main"
    assert excinfo.value.block == block.name
    assert excinfo.value.index == index


def test_uninitialized_spill_slot_detected():
    allocation = fresh_allocation()
    fa = allocation.functions["main"]
    loads = overhead_sites(fa, SpillLoad, OverheadKind.SPILL)
    assert loads, "test program has no spill reloads"
    slot = loads[0][2].slot
    # The bug: the spill stores feeding this reload were never emitted.
    for block in fa.func.blocks:
        block.instrs[:] = [
            instr
            for instr in block.instrs
            if not (
                isinstance(instr, SpillStore)
                and instr.kind is OverheadKind.SPILL
                and instr.slot == slot
            )
        ]
    with pytest.raises(SpillSlotError) as excinfo:
        verify_allocation(allocation)
    assert "before any store" in str(excinfo.value)


def test_dropped_callee_save_restore_detected():
    allocation = fresh_allocation()
    fa = allocation.functions["main"]
    sites = overhead_sites(fa, SpillLoad, OverheadKind.CALLEE_SAVE)
    assert sites, "test program uses no callee-save registers"
    block, index, _ = sites[0]
    del block.instrs[index]
    with pytest.raises(CalleeSaveError) as excinfo:
        verify_allocation(allocation)
    assert "not" in str(excinfo.value) and "restored" in str(excinfo.value)


def test_dropped_callee_save_prologue_detected():
    allocation = fresh_allocation()
    fa = allocation.functions["main"]
    sites = overhead_sites(fa, SpillStore, OverheadKind.CALLEE_SAVE)
    assert sites, "test program uses no callee-save registers"
    block, index, _ = sites[0]
    assert block is fa.func.entry
    del block.instrs[index]
    with pytest.raises(CalleeSaveError):
        verify_allocation(allocation)


def test_unassigned_live_range_detected():
    allocation = fresh_allocation()
    fa = allocation.functions["main"]
    victim = next(iter(fa.func.vregs()))
    del fa.assignment[victim]
    with pytest.raises(UnassignedLiveRangeError) as excinfo:
        verify_allocation(allocation)
    assert excinfo.value.check == "unassigned"


def test_errors_carry_structured_context():
    allocation = fresh_allocation()
    fa = allocation.functions["main"]
    block, index, instr = overhead_sites(fa, SpillLoad, OverheadKind.SPILL)[0]
    instr.slot = fa.frame_slots + 1
    with pytest.raises(AllocationVerificationError) as excinfo:
        verify_allocation(allocation)
    record = excinfo.value.as_dict()
    assert record["check"] == "spill-slot"
    assert record["function"] == "main"
    assert record["block"] == block.name
    assert record["index"] == index


def test_caller_save_slot_skew_detected():
    allocation = fresh_allocation()
    fa = allocation.functions["main"]
    sites = overhead_sites(fa, SpillLoad, OverheadKind.CALLER_SAVE)
    assert sites, "test program has no caller-save restores"
    _, _, instr = sites[0]
    # Restore from the wrong frame slot: the value that comes back is
    # whatever lives there, not what was saved.  Shift within the
    # frame so the save/restore pairing check (not the range check)
    # must catch it.
    instr.slot = (instr.slot + 1) % allocation.functions["main"].frame_slots
    with pytest.raises((CallerSaveError, SpillSlotError)):
        verify_allocation(allocation)
