"""The paper's worked examples, end to end through ordering+assignment.

Figures 3, 4 and 5 each describe a small interference graph, the
decision the enhanced allocator makes, and the load/store savings at
stake.  These tests run the actual phases over those graphs and check
the *outcome costs*, not just the orderings.

Cost accounting mirrors the paper's: a range in its preferred-kind
register saves its benefit; the model cost of an outcome is the spill
cost of spilled ranges plus caller-save cost of caller-assigned ones
plus the callee cost of each callee-save register opened.
"""

from repro.machine import RegisterConfig, RegisterFile
from repro.regalloc import AllocatorOptions, ColorAssigner, simplify
from repro.regalloc.benefits import delta_key, max_key
from repro.regalloc.preference import preference_decisions
from tests.regalloc.helpers import from_benefits
from tests.regalloc.test_figure8_optimistic import decision_cost


def run_pipeline(
    graph, infos, benefits, regs, config, key=delta_key, forced=frozenset(),
    callee_cost=2.0,
):
    rf = RegisterFile(RegisterConfig(*config))
    ordering = simplify(
        graph, infos, rf, key_fn=lambda r: key(benefits[r])
    )
    assigner = ColorAssigner(
        graph,
        infos,
        benefits,
        rf,
        AllocatorOptions.improved_chaitin(sc=True, bs=True, pr=False),
        forced_caller=set(forced),
        callee_cost=callee_cost,
    )
    result = assigner.run(ordering.stack)
    spilled = list(ordering.spilled) + list(result.spilled)
    return result.assignment, spilled


class TestFigure3:
    """Benefit-driven simplification: 2 callee-save + 1 caller-save.

    Three ranges all preferring callee-save; x and y (benefit pair
    1000/2000) must receive the two callee-save registers, z (100/200)
    the caller-save one: savings 2000+2000+100 = 4100 rather than the
    naive ordering's 2000+2000(only one) ... = 3200.
    """

    SPECS = {
        "x": (1000.0, 2000.0),
        "y": (1000.0, 2000.0),
        "z": (100.0, 200.0),
    }
    EDGES = [("x", "y"), ("x", "z"), ("y", "z")]

    def savings(self, assignment, benefits, regs):
        total = 0.0
        for name, reg in regs.items():
            phys = assignment.get(reg)
            if phys is None:
                continue
            total += (
                benefits[reg].callee if phys.is_callee_save else benefits[reg].caller
            )
        return total

    def test_delta_key_reaches_best_allocation(self):
        graph, infos, benefits, regs = from_benefits(
            self.SPECS, self.EDGES, callee_cost=10.0
        )
        assignment, spilled = run_pipeline(
            graph, infos, benefits, regs, (1, 1, 2, 1), callee_cost=10.0
        )
        assert not spilled
        assert assignment[regs["x"]].is_callee_save
        assert assignment[regs["y"]].is_callee_save
        assert assignment[regs["z"]].is_caller_save
        assert self.savings(assignment, benefits, regs) == 4100.0


class TestFigure4:
    """Delta vs max key on the x-y-z triangle.

    x, y: (1800, 2000); z: (500, 1500).  Max key gives x,y the
    callee-save registers (savings 4500); the delta key protects z
    (penalty 1000 vs 200) and reaches 5300.
    """

    SPECS = {
        "x": (1800.0, 2000.0),
        "y": (1800.0, 2000.0),
        "z": (500.0, 1500.0),
    }
    EDGES = [("x", "y"), ("y", "z"), ("z", "x")]

    def _savings(self, key):
        graph, infos, benefits, regs = from_benefits(
            self.SPECS, self.EDGES, callee_cost=10.0
        )
        assignment, spilled = run_pipeline(
            graph, infos, benefits, regs, (1, 1, 2, 1), key=key, callee_cost=10.0
        )
        assert not spilled
        return sum(
            benefits[reg].callee if phys.is_callee_save else benefits[reg].caller
            for reg, phys in assignment.items()
        )

    def test_max_key_savings(self):
        assert self._savings(max_key) == 1800.0 + 2000.0 + 1500.0 - 800.0  # 4500

    def test_delta_key_savings(self):
        assert self._savings(delta_key) == 1800.0 + 2000.0 + 1500.0  # 5300

    def test_delta_beats_max(self):
        assert self._savings(delta_key) > self._savings(max_key)


class TestFigure5Style:
    """The preference decision arbitrating one callee-save register.

    Two ranges cross the same hot call and both prefer callee-save;
    only one callee-save register exists.  Without PR, simplification
    order can hand it to the cheap one; PR demotes the cheap one so
    the expensive one is guaranteed the register.
    """

    def _scenario(self):
        # "big" loses 4000 if demoted (caller cost), "small" loses 300.
        specs = {
            "big": (1000.0, 4900.0),   # caller benefit, callee benefit
            "small": (4600.0, 4898.0),
        }
        # They interfere (both live across the same call).
        return from_benefits(specs, [("big", "small")], callee_cost=100.0)

    def test_pr_forces_the_cheap_range_to_caller(self):
        graph, infos, benefits, regs = self._scenario()
        from repro.analysis.frequency import BlockWeights

        call_block = infos[regs["big"]].crossed_calls[0][0]
        weights = BlockWeights(weights={call_block: 100.0}, entry_weight=50.0)
        rf = RegisterFile(RegisterConfig(2, 1, 1, 1))
        forced = preference_decisions(infos, benefits, weights, rf)
        assert forced == {regs["small"]}

    def test_outcome_with_and_without_pr(self):
        graph, infos, benefits, regs = self._scenario()
        assignment, spilled = run_pipeline(
            graph, infos, benefits, regs, (2, 1, 1, 1),
            forced={regs["small"]}, callee_cost=100.0,
        )
        assert assignment[regs["big"]].is_callee_save
        assert assignment[regs["small"]].is_caller_save
        with_pr = decision_cost(assignment, spilled, infos, 100.0)

        graph, infos, benefits, regs = self._scenario()
        assignment, spilled = run_pipeline(
            graph, infos, benefits, regs, (2, 1, 1, 1), callee_cost=100.0
        )
        without_pr = decision_cost(assignment, spilled, infos, 100.0)
        assert with_pr <= without_pr
