"""Tests for Briggs-style rematerialization (extension feature)."""

import pytest

from repro.eval import program_overhead
from repro.lang import compile_source
from repro.machine import RegisterConfig, register_file
from repro.profile import run_allocated, run_program
from repro.regalloc import AllocatorOptions, allocate_program
from repro.regalloc.framework import _rematerializable
from repro.regalloc.spillinstr import SpillLoad, SpillStore
from tests.conftest import assert_same_globals

PRESSURE_SOURCE = """
int out[2];
void main() {
    int c = 9999;
    int a = out[0] + 1;
    int b = out[1] + 2;
    int d = a * b + a - b;
    int e = a + b * d;
    out[0] = a + b + d + e + c;
    out[1] = c * 2 + e;
}
"""


class TestCandidateDetection:
    def test_constant_web_detected(self):
        program = compile_source("int out[1];\nvoid main() { int c = 7; out[0] = c; }")
        func = program.function("main")
        from repro.regalloc import build_webs

        build_webs(func)
        const_regs = [r for r in func.vregs() if r.name is None or r.name == "c"]
        values = _rematerializable(func, func.vregs())
        assert any(v == 7 for v in values.values())

    def test_params_never_rematerialized(self):
        program = compile_source(
            "int f(int p) { return p; }\nvoid main() { int x = f(1); }"
        )
        func = program.function("f")
        values = _rematerializable(func, func.vregs())
        assert func.params[0] not in values

    def test_multi_value_web_rejected(self):
        # A register redefined with different constants cannot be
        # rematerialized from one value.
        program = compile_source(
            """
            int out[2];
            void main() {
                int c = 1;
                out[0] = c;
                c = 2;
                out[1] = c + out[0];
            }
            """
        )
        func = program.function("main")
        # Before web renaming c has two conflicting const defs.
        values = _rematerializable(func, func.vregs())
        c_regs = [r for r in func.vregs() if r.name == "c"]
        assert all(r not in values for r in c_regs)

    def test_computed_def_rejected(self):
        program = compile_source(
            "int out[1];\nvoid main() { int x = out[0] + 1; out[0] = x; }"
        )
        func = program.function("main")
        values = _rematerializable(func, func.vregs())
        x_regs = [r for r in func.vregs() if r.name == "x"]
        assert all(r not in values for r in x_regs)


class TestRematAllocation:
    def _allocate(self, remat: bool):
        program = compile_source(PRESSURE_SOURCE)
        rf = register_file(RegisterConfig(2, 1, 1, 1))
        options = AllocatorOptions.base_chaitin().with_(remat=remat)
        return program, allocate_program(program, rf, options)

    def test_reduces_spill_overhead(self):
        program, plain = self._allocate(remat=False)
        profile = run_program(program).profile
        _, with_remat = self._allocate(remat=True)
        plain_cost = program_overhead(plain, profile)
        remat_cost = program_overhead(with_remat, profile)
        assert remat_cost.spill < plain_cost.spill

    def test_semantics_preserved(self):
        program, allocation = self._allocate(remat=True)
        base = run_program(program)
        mech = run_allocated(allocation)
        assert_same_globals(base.globals_state, mech.globals_state)

    def test_no_slot_traffic_for_remat_range(self):
        # The constant 9999 must not flow through a frame slot.
        program, allocation = self._allocate(remat=True)
        fa = allocation.functions["main"]
        if not fa.spilled:
            pytest.skip("register file large enough, nothing spilled")
        # Any surviving 9999 must come from a Const, and the slots in
        # use must be fewer than without rematerialization.
        _, plain = self._allocate(remat=False)
        assert (
            fa.frame_slots <= plain.functions["main"].frame_slots
        )

    def test_workload_equivalence_with_remat(self):
        from repro.workloads import compile_workload

        compiled = compile_workload("fpppp")
        rf = register_file(RegisterConfig(6, 4, 1, 1))
        options = AllocatorOptions.improved_chaitin().with_(remat=True)
        allocation = allocate_program(
            compiled.program, rf, options, compiled.dynamic_weights
        )
        mech = run_allocated(allocation)
        assert_same_globals(compiled.baseline.globals_state, mech.globals_state)
