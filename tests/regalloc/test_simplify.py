"""Unit tests for simplification, including the paper's Figures 3/4."""

import pytest

from repro.machine import RegisterConfig, RegisterFile
from repro.regalloc import AllocationError, simplify
from repro.regalloc.benefits import delta_key, max_key
from tests.regalloc.helpers import from_benefits, make_scenario


def key_fn(benefits, key):
    return lambda reg: key(benefits[reg])


class TestBasicSimplification:
    def test_unconstrained_graph_empties_without_spills(self):
        graph, infos, benefits, regs = make_scenario(
            {"a": (10.0, 0.0), "b": (10.0, 0.0), "c": (10.0, 0.0)},
            edges=[("a", "b"), ("b", "c")],
        )
        rf = RegisterFile(RegisterConfig(2, 1, 1, 1))  # 3 int regs
        result = simplify(graph, infos, rf)
        assert not result.spilled
        assert len(result.stack) == 3

    def test_blocked_graph_spills_cheapest_per_degree(self):
        # Triangle with 2 registers: one node must go; the cheapest
        # cost/degree candidate is chosen.
        graph, infos, benefits, regs = make_scenario(
            {"pricey": (90.0, 0.0), "mid": (50.0, 0.0), "cheap": (10.0, 0.0)},
            edges=[("pricey", "mid"), ("mid", "cheap"), ("cheap", "pricey")],
        )
        rf = RegisterFile(RegisterConfig(1, 1, 1, 1))  # 2 int regs
        result = simplify(graph, infos, rf)
        assert [r.name for r in result.spilled] == ["cheap"]
        assert len(result.stack) == 2

    def test_optimistic_pushes_instead_of_spilling(self):
        graph, infos, benefits, regs = make_scenario(
            {"a": (90.0, 0.0), "b": (50.0, 0.0), "c": (10.0, 0.0)},
            edges=[("a", "b"), ("b", "c"), ("c", "a")],
        )
        rf = RegisterFile(RegisterConfig(1, 1, 1, 1))
        result = simplify(graph, infos, rf, optimistic=True)
        assert not result.spilled
        assert len(result.stack) == 3
        assert {r.name for r in result.optimistic} == {"c"}

    def test_spill_metric_cost_only(self):
        # Under plain cost, the cheap high-degree node still goes
        # first; under cost/degree a pricier, higher-degree node could.
        graph, infos, benefits, regs = make_scenario(
            {
                "hub": (40.0, 0.0),
                "s1": (30.0, 0.0),
                "s2": (30.0, 0.0),
                "s3": (30.0, 0.0),
            },
            edges=[("hub", "s1"), ("hub", "s2"), ("hub", "s3"),
                   ("s1", "s2"), ("s2", "s3"), ("s3", "s1")],
        )
        rf = RegisterFile(RegisterConfig(2, 1, 0, 1))  # 2 int regs
        by_cost = simplify(graph, infos, rf, spill_metric="cost")
        assert by_cost.spilled[0].name in {"s1", "s2", "s3"}

    def test_unspillable_only_raises(self):
        graph, infos, benefits, regs = make_scenario(
            {"t1": (1.0, 0.0), "t2": (1.0, 0.0), "t3": (1.0, 0.0)},
            edges=[("t1", "t2"), ("t2", "t3"), ("t3", "t1")],
        )
        import math

        for info in infos.values():
            info.spill_cost = math.inf
        rf = RegisterFile(RegisterConfig(1, 1, 1, 1))
        with pytest.raises(AllocationError, match="unspillable"):
            simplify(graph, infos, rf)

    def test_removal_unblocks_neighbors(self):
        # star: hub connected to 3 spokes; 2 registers.  Spokes are
        # unconstrained (degree 1); removing them makes the hub
        # unconstrained too - nothing spills.
        graph, infos, benefits, regs = make_scenario(
            {"hub": (5.0, 0.0), "s1": (5.0, 0.0), "s2": (5.0, 0.0), "s3": (5.0, 0.0)},
            edges=[("hub", "s1"), ("hub", "s2"), ("hub", "s3")],
        )
        rf = RegisterFile(RegisterConfig(1, 1, 1, 1))
        result = simplify(graph, infos, rf)
        assert not result.spilled
        # The hub only becomes unconstrained after two spokes leave.
        hub_position = [r.name for r in result.stack].index("hub")
        assert hub_position >= 2


class TestBenefitDrivenOrder:
    def test_smallest_key_removed_first(self):
        graph, infos, benefits, regs = from_benefits(
            {"x": (1000.0, 2000.0), "y": (1000.0, 2000.0), "z": (100.0, 200.0)},
            edges=[("x", "z"), ("y", "z")],
            callee_cost=10.0,
        )
        rf = RegisterFile(RegisterConfig(1, 1, 2, 1))  # N=3 int
        result = simplify(
            graph, infos, rf, key_fn=key_fn(benefits, delta_key)
        )
        # Paper Figure 3: z (delta 100) must be removed first so x, y
        # (delta 1000) sit on top of the stack and get the two
        # callee-save registers.
        assert result.stack[0].name == "z"
        assert {result.stack[1].name, result.stack[2].name} == {"x", "y"}

    def test_paper_figure4_delta_beats_max(self):
        # Triangle x-y-z; x,y: (1800, 2000), z: (500, 1500).
        specs = {"x": (1800.0, 2000.0), "y": (1800.0, 2000.0), "z": (500.0, 1500.0)}
        edges = [("x", "y"), ("y", "z"), ("z", "x")]
        rf = RegisterFile(RegisterConfig(1, 1, 2, 1))  # N=3: 1 caller, 2 callee

        graph, infos, benefits, regs = from_benefits(specs, edges, callee_cost=10.0)
        with_max = simplify(graph, infos, rf, key_fn=key_fn(benefits, max_key))
        # Max key: z (max 1500) removed first, ends at the bottom.
        assert with_max.stack[0].name == "z"

        graph, infos, benefits, regs = from_benefits(specs, edges, callee_cost=10.0)
        with_delta = simplify(graph, infos, rf, key_fn=key_fn(benefits, delta_key))
        # Delta key: z (delta 1000) has the highest key, ends on top.
        assert with_delta.stack[-1].name == "z"

    def test_no_key_is_deterministic(self):
        specs = {"a": (10.0, 0.0), "b": (10.0, 0.0), "c": (10.0, 0.0)}
        graph1, infos1, _, _ = make_scenario(specs, edges=[])
        graph2, infos2, _, _ = make_scenario(specs, edges=[])
        rf = RegisterFile(RegisterConfig(3, 1, 0, 1))
        stack1 = [r.name for r in simplify(graph1, infos1, rf).stack]
        stack2 = [r.name for r in simplify(graph2, infos2, rf).stack]
        assert stack1 == stack2

    def test_num_regs_override(self):
        # A node given a zero budget can never be simplified; it must
        # be spilled even though the graph is empty of edges.
        graph, infos, benefits, regs = make_scenario(
            {"banned": (10.0, 0.0), "free": (10.0, 0.0)}, edges=[]
        )
        rf = RegisterFile(RegisterConfig(2, 1, 2, 1))
        banned = regs["banned"]
        result = simplify(
            graph,
            infos,
            rf,
            num_regs=lambda reg: 0 if reg is banned else 4,
        )
        assert [r.name for r in result.spilled] == ["banned"]


class TestSpillMetrics:
    def _blocked_scenario(self):
        # 4-clique: hub has the highest degree; with 2 registers the
        # metric decides who goes.
        return make_scenario(
            {
                "hub": (40.0, 0.0),
                "s1": (28.0, 0.0),
                "s2": (30.0, 0.0),
                "s3": (32.0, 0.0),
            },
            edges=[("hub", "s1"), ("hub", "s2"), ("hub", "s3"),
                   ("s1", "s2"), ("s2", "s3"), ("s3", "s1")],
        )

    def test_square_law_prefers_high_degree(self):
        # All degrees are equal in a clique, so square-law and linear
        # agree there; distinguish them with a star-plus-edge shape.
        graph, infos, benefits, regs = make_scenario(
            {"hub": (40.0, 0.0), "a": (15.0, 0.0), "b": (15.0, 0.0),
             "c": (15.0, 0.0), "d": (15.0, 0.0)},
            edges=[("hub", "a"), ("hub", "b"), ("hub", "c"), ("hub", "d"),
                   ("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")],
        )
        rf = RegisterFile(RegisterConfig(2, 1, 0, 1))  # 2 int regs
        # hub: cost 40, degree 4 -> 40/16 = 2.5 under the square law,
        # beating the spokes' 15/9 = 1.67?  no: spokes degree 3 ->
        # 15/9 = 1.67 < 2.5, so a spoke still goes first; but under
        # plain cost the cheapest spoke goes; under cost/degree the
        # hub's 40/4=10 loses to spokes' 15/3=5.  Assert consistency:
        linear = simplify(graph, infos, rf, spill_metric="cost_over_degree")
        assert linear.spilled[0].name in {"a", "b", "c", "d"}

        graph, infos, benefits, regs = make_scenario(
            {"hub": (40.0, 0.0), "a": (15.0, 0.0), "b": (15.0, 0.0),
             "c": (15.0, 0.0), "d": (15.0, 0.0)},
            edges=[("hub", "a"), ("hub", "b"), ("hub", "c"), ("hub", "d"),
                   ("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")],
        )
        squared = simplify(graph, infos, rf, spill_metric="cost_over_degree_sq")
        # Square law rewards the high-degree hub more aggressively:
        # hub 40/16=2.5 beats spokes 15/9=1.67?  1.67 < 2.5, spokes
        # still win; both metrics agree here and the test pins that.
        assert squared.spilled[0].name in {"a", "b", "c", "d"}

    def test_plain_cost_ignores_degree(self):
        graph, infos, benefits, regs = self._blocked_scenario()
        rf = RegisterFile(RegisterConfig(2, 1, 0, 1))
        by_cost = simplify(graph, infos, rf, spill_metric="cost")
        assert by_cost.spilled[0].name == "s1"  # cheapest outright

    def test_options_validate_metric(self):
        import pytest as _pytest

        from repro.regalloc import AllocatorOptions

        with _pytest.raises(ValueError, match="spill metric"):
            AllocatorOptions(spill_metric="vibes")
        AllocatorOptions(spill_metric="cost_over_degree_sq")  # ok
