"""The paper's Figure 8: optimistic coloring can *increase* overhead.

A four-cycle of live ranges with two registers (one caller-save, one
callee-save per the figure) blocks simplification.  Base Chaitin
spills the cheapest node and pays its small spill cost; optimistic
coloring squeezes every node into a register — and if the squeezed
node crosses a hot call and lands in a caller-save register, the
save/restore cost dwarfs the spill cost it avoided.

The unit test reconstructs the graph exactly and compares the *model
cost* of both outcomes; the integration test demonstrates the same
effect end-to-end on compiled code (a sub-1.00 cell of Table 3).
"""

from repro.machine import RegisterConfig, RegisterFile
from repro.regalloc import AllocatorOptions, ColorAssigner, simplify
from tests.regalloc.helpers import make_scenario


def decision_cost(assignment, spilled, infos, callee_cost):
    """Total overhead the model charges for one outcome."""
    cost = sum(infos[reg].spill_cost for reg in spilled)
    used_callee = set()
    for reg, phys in assignment.items():
        if phys.is_caller_save:
            cost += infos[reg].caller_cost
        else:
            used_callee.add(phys)
    return cost + callee_cost * len(used_callee)


def run(optimistic: bool):
    # Figure 8's square: u - v - x - y - u.  u crosses a hot call
    # (spill cost 10, caller-save cost 100); y crosses a cold call, so
    # the base preference steers it (and transitively u's diagonal
    # partner x's color) exactly into the paper's inferior outcome;
    # v and x are call-free and expensive to spill.
    specs = {
        "u": (10.0, 100.0),
        "v": (60.0, 0.0),
        "x": (60.0, 0.0),
        "y": (60.0, 4.0),
    }
    edges = [("u", "v"), ("v", "x"), ("x", "y"), ("y", "u")]
    graph, infos, benefits, regs = make_scenario(specs, edges, entry_weight=1.0)
    rf = RegisterFile(RegisterConfig(1, 1, 1, 1))  # 1 caller + 1 callee int
    ordering = simplify(graph, infos, rf, optimistic=optimistic)
    assigner = ColorAssigner(
        graph, infos, benefits, rf, AllocatorOptions.base_chaitin(),
        callee_cost=2.0,
    )
    result = assigner.run(ordering.stack)
    spilled = list(ordering.spilled) + list(result.spilled)
    return result.assignment, spilled, infos, regs


class TestFigure8:
    def test_base_spills_the_cheap_crossing_range(self):
        assignment, spilled, infos, regs = run(optimistic=False)
        assert [r.name for r in spilled] == ["u"]
        assert len(assignment) == 3

    def test_optimistic_colors_the_whole_cycle(self):
        assignment, spilled, infos, regs = run(optimistic=True)
        assert not spilled
        assert len(assignment) == 4
        # Two registers suffice for the even cycle.
        assert len(set(assignment.values())) == 2

    def test_optimistic_outcome_costs_more(self):
        base_assignment, base_spilled, infos, _ = run(optimistic=False)
        base_cost = decision_cost(base_assignment, base_spilled, infos, 2.0)
        opt_assignment, opt_spilled, infos2, regs = run(optimistic=True)
        opt_cost = decision_cost(opt_assignment, opt_spilled, infos2, 2.0)
        # Base: spill u (10) + v,x,y in registers.  Optimistic: u ends
        # up in the caller-save register (its neighbors v and y share
        # the callee-save one) and pays 100.
        assert base_cost < opt_cost
        u = regs["u"]
        assert opt_assignment[u].is_caller_save


class TestEndToEndDeterioration:
    SOURCE = """
    float fout[8];
    int out[2];
    int id(int k) { return k; }
    void main() {
        float u = fout[0] + 0.5;
        int t = 0;
        for (int i = 0; i < 80; i = i + 1) {
            t = t + id(i);
        }
        float v = fout[1] + 0.25;
        fout[2] = u * 0.5;
        float y = 0.0;
        if (t % 2 == 0) {
            float x = v + 1.5;
            fout[3] = v * 2.0;
            y = x + 0.125;
            fout[4] = x * 3.0;
            fout[7] = y + u;
        } else {
            fout[5] = v * 4.0;
            y = u + 0.0625;
            fout[6] = u * 5.0;
        }
        fout[0] = y;
        out[0] = t;
    }
    """

    def test_optimistic_worse_on_compiled_code(self):
        from repro.eval import program_overhead
        from repro.lang import compile_source
        from repro.machine import register_file
        from repro.profile import run_program
        from repro.regalloc import allocate_program

        program = compile_source(self.SOURCE)
        profile = run_program(program).profile
        rf = register_file(RegisterConfig(6, 2, 0, 0))
        base = allocate_program(
            program, rf, AllocatorOptions.base_chaitin(), profile.weights
        )
        optimistic = allocate_program(
            program, rf, AllocatorOptions.optimistic_coloring(), profile.weights
        )
        base_cost = program_overhead(base, profile).total
        optimistic_cost = program_overhead(optimistic, profile).total
        assert optimistic_cost > base_cost  # the paper's dark-shaded cell
