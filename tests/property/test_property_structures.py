"""Property-based tests over core data structures and analyses."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import compute_liveness, loop_depths, reverse_postorder
from repro.analysis.frequency import static_weights
from repro.machine import RegisterConfig, RegisterFile
from repro.regalloc import build_interference, build_webs, simplify
from repro.regalloc.interference import InterferenceGraph
from repro.workloads.generator import random_program

RELAXED = settings(max_examples=25, deadline=None)

seeds = st.integers(min_value=0, max_value=10_000)


class TestInterferenceGraphProperties:
    @given(
        edges=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.integers(min_value=0, max_value=15),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_symmetry_and_no_self_loops(self, edges):
        from tests.regalloc.helpers import fresh_reg

        regs = [fresh_reg(f"n{i}") for i in range(16)]
        graph = InterferenceGraph()
        for a, b in edges:
            graph.add_edge(regs[a], regs[b])
        for node in graph.nodes:
            assert node not in graph.neighbors(node)
            for neighbor in graph.neighbors(node):
                assert graph.interferes(neighbor, node)

    @given(
        edges=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.integers(min_value=1, max_value=9),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_preserves_symmetry(self, edges):
        from tests.regalloc.helpers import fresh_reg

        regs = [fresh_reg(f"m{i}") for i in range(10)]
        graph = InterferenceGraph()
        for reg in regs:
            graph.add_node(reg)
        for a, b in edges:
            graph.add_edge(regs[a], regs[b])
        if regs[1] in set(graph.nodes) and regs[0] is not regs[1]:
            graph.merge(regs[0], regs[1])
        for node in graph.nodes:
            for neighbor in graph.neighbors(node):
                assert graph.interferes(neighbor, node)
        assert regs[1] not in set(graph.nodes)


class TestAnalysisProperties:
    @given(seed=seeds)
    @RELAXED
    def test_rpo_covers_reachable_exactly_once(self, seed):
        program = random_program(seed)
        for func in program.functions.values():
            order = reverse_postorder(func)
            assert len(order) == len(set(order))
            assert order[0] is func.entry

    @given(seed=seeds)
    @RELAXED
    def test_liveness_live_in_of_entry_is_params_only(self, seed):
        program = random_program(seed)
        for func in program.functions.values():
            info = compute_liveness(func)
            assert info.live_in[func.entry] <= frozenset(func.params)

    @given(seed=seeds)
    @RELAXED
    def test_loop_depths_nonnegative(self, seed):
        program = random_program(seed)
        for func in program.functions.values():
            assert all(d >= 0 for d in loop_depths(func).values())

    @given(seed=seeds)
    @RELAXED
    def test_webs_partition_references(self, seed):
        program = random_program(seed)
        for func in program.functions.values():
            webs = build_webs(func)
            regs = {web.reg for web in webs}
            assert len(regs) == len(webs)  # one register per web
            for instr in func.instructions():
                for reg in list(instr.defs()) + list(instr.uses()):
                    assert reg in regs


class TestSimplifyProperties:
    @given(seed=seeds, caller=st.integers(2, 6), callee=st.integers(0, 4))
    @RELAXED
    def test_stack_plus_spills_cover_graph(self, seed, caller, callee):
        program = random_program(seed)
        func = next(iter(program.functions.values()))
        build_webs(func)
        graph, infos = build_interference(func, static_weights(func), set())
        rf = RegisterFile(RegisterConfig(caller, max(caller - 1, 1), callee, callee))
        result = simplify(graph, infos, rf)
        covered = set(result.stack) | set(result.spilled)
        assert covered == set(graph.nodes)
        assert len(result.stack) + len(result.spilled) == len(graph)

    @given(seed=seeds)
    @RELAXED
    def test_optimistic_never_spills_at_ordering(self, seed):
        program = random_program(seed)
        func = next(iter(program.functions.values()))
        build_webs(func)
        graph, infos = build_interference(func, static_weights(func), set())
        rf = RegisterFile(RegisterConfig(2, 2, 1, 1))
        result = simplify(graph, infos, rf, optimistic=True)
        assert not result.spilled
        assert set(result.stack) == set(graph.nodes)
