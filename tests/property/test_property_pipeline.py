"""Property-based tests over randomly generated programs.

The generator (:mod:`repro.workloads.generator`) produces terminating,
runtime-error-free mini-C programs; hypothesis drives seeds, register
configurations and allocator choices, and the properties assert the
pipeline's global invariants:

* allocated code is observationally equivalent to the source,
* interfering live ranges never share a register,
* analytic overhead equals executed overhead.
"""

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.analysis.frequency import static_weights
from repro.eval import program_overhead
from repro.machine import RegisterConfig, register_file
from repro.profile import run_allocated, run_program
from repro.regalloc import (
    AllocatorOptions,
    allocate_program,
    build_interference,
)
from repro.regalloc.spillinstr import OverheadKind
from repro.profile import InterpreterError
from repro.workloads.generator import random_program
from tests.conftest import assert_same_globals


def run_bounded(program, fuel=3_000_000):
    """Run the program, skipping the example if it is too long-running.

    The generator guarantees termination but not a bound: nested loops
    across a call chain can multiply into tens of millions of
    instructions, which is a property of the input, not of the system
    under test.
    """
    try:
        return run_program(program, fuel=fuel)
    except InterpreterError as error:
        assume("fuel" not in str(error))
        raise

ALLOCATOR_STRATEGY = st.sampled_from(
    [
        AllocatorOptions.base_chaitin(),
        AllocatorOptions.optimistic_coloring(),
        AllocatorOptions.improved_chaitin(),
        AllocatorOptions.priority_based(),
        AllocatorOptions.cbh(),
    ]
)

CONFIG_STRATEGY = st.sampled_from(
    [
        RegisterConfig(6, 4, 0, 0),
        RegisterConfig(4, 3, 2, 2),
        RegisterConfig(3, 2, 1, 1),
        RegisterConfig(8, 6, 4, 3),
    ]
)

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(seed=st.integers(min_value=0, max_value=10_000),
       options=ALLOCATOR_STRATEGY,
       config=CONFIG_STRATEGY)
@RELAXED
def test_allocation_preserves_semantics(seed, options, config):
    program = random_program(seed)
    base = run_bounded(program)
    allocation = allocate_program(program, register_file(config), options)
    mech = run_allocated(allocation, fuel=30_000_000)
    assert_same_globals(base.globals_state, mech.globals_state)


@given(seed=st.integers(min_value=0, max_value=10_000),
       options=ALLOCATOR_STRATEGY,
       config=CONFIG_STRATEGY)
@RELAXED
def test_no_interfering_pair_shares_a_register(seed, options, config):
    program = random_program(seed)
    allocation = allocate_program(program, register_file(config), options)
    for fa in allocation.functions.values():
        graph, _ = build_interference(fa.func, static_weights(fa.func), set())
        for reg in graph.nodes:
            phys = fa.assignment.get(reg)
            if phys is None:
                continue
            for neighbor in graph.neighbors(reg):
                other = fa.assignment.get(neighbor)
                assert other is None or other != phys, (
                    f"{fa.func.name}: {reg} and {neighbor} share {phys}"
                )


@given(seed=st.integers(min_value=0, max_value=10_000),
       options=ALLOCATOR_STRATEGY)
@RELAXED
def test_analytic_overhead_matches_execution(seed, options):
    program = random_program(seed)
    base = run_bounded(program)
    config = RegisterConfig(4, 3, 1, 1)
    allocation = allocate_program(
        program, register_file(config), options, base.profile.weights
    )
    analytic = program_overhead(allocation, base.profile)
    mech = run_allocated(allocation, fuel=30_000_000)
    assert analytic.spill == mech.overhead_counts[OverheadKind.SPILL]
    assert analytic.caller_save == mech.overhead_counts[OverheadKind.CALLER_SAVE]
    assert analytic.callee_save == mech.overhead_counts[OverheadKind.CALLEE_SAVE]
    assert analytic.shuffle == mech.shuffle_count


@given(seed=st.integers(min_value=0, max_value=10_000))
@RELAXED
def test_registers_within_configured_file(seed):
    program = random_program(seed)
    config = RegisterConfig(3, 2, 2, 1)
    rf = register_file(config)
    allocation = allocate_program(program, rf, AllocatorOptions.improved_chaitin())
    valid = set(rf.all_registers())
    for fa in allocation.functions.values():
        for phys in fa.assignment.values():
            assert phys in valid


@given(seed=st.integers(min_value=0, max_value=10_000))
@RELAXED
def test_generated_programs_verify(seed):
    from repro.ir import verify_program

    program = random_program(seed)
    verify_program(program)
