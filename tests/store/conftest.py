"""Store tests run against throwaway roots and never leak config.

The store is process-global (module singleton plus an environment
variable that children inherit); every test here gets a clean slate
before and after, and the compiled-workload cache is dropped so a
warm compile from one test cannot satisfy the next.
"""

from __future__ import annotations

import pytest

from repro.store import ENV_VAR, configure_store
from repro.workloads.registry import clear_compiled_cache


@pytest.fixture(autouse=True)
def _isolated_store(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    configure_store(None, export_env=False)
    clear_compiled_cache()
    yield
    monkeypatch.delenv(ENV_VAR, raising=False)
    configure_store(None, export_env=False)
    clear_compiled_cache()
