"""Bit-identity: the warm path must change nothing but the clock.

For every workload (and a spread of fuzz-generated programs), a run
that rehydrates from the artifact store must produce *exactly* the
results of a store-disabled run: same profiles, same baselines, same
static weights, same allocation reports, same decision traces.  No
float tolerance anywhere — the store round-trips through JSON, which
preserves Python floats and dict order exactly, and these tests are
the proof.
"""

from __future__ import annotations

import pytest

from repro.engine import AllocationEngine, AllocationRequest
from repro.store import configure_store, get_store
from repro.workloads.generator import random_source
from repro.workloads.registry import (
    clear_compiled_cache,
    compile_workload,
    workload_names,
)


def profile_snapshot(compiled) -> dict:
    """A compiled workload's warm state as comparable plain data."""
    program = compiled.program
    block_to_func = {
        id(block): func.name
        for func in program.functions.values()
        for block in func.blocks
    }
    return {
        "entry_counts": dict(compiled.profile.entry_counts),
        "block_counts": sorted(
            (block_to_func[id(block)], block.name, count)
            for block, count in compiled.profile.block_counts.items()
        ),
        "return_value": compiled.baseline.return_value,
        "instructions": compiled.baseline.instructions_executed,
        "globals": {
            name: list(values)
            for name, values in compiled.baseline.globals_state.items()
        },
        "static_weights": {
            func.name: {
                "entry": compiled.static_weights(func).entry_weight,
                "blocks": {
                    block.name: weight
                    for block, weight in (
                        compiled.static_weights(func).weights.items()
                    )
                },
            }
            for func in program.functions.values()
        },
        "dynamic_weights": {
            func.name: {
                block.name: weight
                for block, weight in (
                    compiled.dynamic_weights(func).weights.items()
                )
            }
            for func in program.functions.values()
        },
    }


def wire_body(result) -> dict:
    """The full comparable surface of an engine result, timings cut."""
    body = result.to_wire()
    body.pop("elapsed_ms", None)
    body.pop("cache", None)
    return body


@pytest.mark.parametrize("name", workload_names())
def test_every_workload_rehydrates_bit_identical(name, tmp_path):
    fresh = profile_snapshot(compile_workload(name))

    configure_store(str(tmp_path / "store"), export_env=False)
    clear_compiled_cache()
    compile_workload(name)  # cold: publishes the artifact
    store = get_store()
    assert store.writes == 1, "cold compile must publish exactly one artifact"
    clear_compiled_cache()
    warm_compiled = compile_workload(name)  # warm: rehydrates it
    assert store.hits >= 1
    warm = profile_snapshot(warm_compiled)

    # Dict == is exact: no tolerance, no rounding, no reordering.
    assert warm == fresh


class TestEngineWarmPath:
    SOURCE = (
        "int out[3];\n"
        "int spin(int x) {\n"
        "    int acc = x;\n"
        "    for (int i = 0; i < 8; i = i + 1) { acc = acc * 3 + i; }\n"
        "    return acc;\n"
        "}\n"
        "void main() {\n"
        "    int total = 0;\n"
        "    for (int i = 0; i < 30; i = i + 1) { total = total + spin(i); }\n"
        "    out[0] = total;\n"
        "}\n"
    )

    def request(self, **overrides) -> AllocationRequest:
        fields = dict(source=self.SOURCE, name="warm-diff", trace="spin")
        fields.update(overrides)
        return AllocationRequest(**fields)

    def test_store_hit_report_and_trace_match_store_off(self, tmp_path):
        baseline = wire_body(AllocationEngine().submit(self.request()))

        configure_store(str(tmp_path / "store"), export_env=False)
        cold_engine = AllocationEngine()
        cold = wire_body(cold_engine.submit(self.request()))
        store = get_store()
        assert store.writes == 1
        # A brand-new engine (cold program cache) must hit the store...
        warm_engine = AllocationEngine()
        warm = wire_body(warm_engine.submit(self.request()))
        assert store.hits >= 1
        # ...and the golden surface — report, fingerprint, decision
        # trace, preset — is exactly what a storeless run produces.
        assert cold == baseline
        assert warm == baseline

    def test_presets_and_configs_share_one_artifact(self, tmp_path):
        configure_store(str(tmp_path / "store"), export_env=False)
        engine = AllocationEngine()
        engine.submit(self.request())
        for preset in ("base", "optimistic", "spillall"):
            fresh = AllocationEngine()
            result = fresh.submit(self.request(preset=preset))
            off = AllocationEngine()  # store keyed per-program, not per-config
            configure_store(None, export_env=False)
            expected = wire_body(off.submit(self.request(preset=preset)))
            configure_store(str(tmp_path / "store"), export_env=False)
            assert wire_body(result) == expected
        assert get_store().stats()["entries"] == 1, "one program, one artifact"

    def test_hit_below_stored_fuel_budget_is_refused(self, tmp_path):
        configure_store(str(tmp_path / "store"), export_env=False)
        first = AllocationEngine().submit(self.request())
        stored_instructions = None
        store = get_store()
        from repro.store import PROGRAM_ARTIFACT

        payload = store.get(first.fingerprint, PROGRAM_ARTIFACT)
        stored_instructions = payload["instructions_executed"]
        assert stored_instructions > 1

        # A fuel budget below the stored run: the warm hit must NOT
        # mask the fuel-exhaustion error a fresh profiling run raises.
        from repro.engine import EngineError

        starved = self.request(fuel=stored_instructions - 1)
        with pytest.raises(EngineError) as with_store:
            AllocationEngine().submit(starved)
        configure_store(None, export_env=False)
        with pytest.raises(EngineError) as without_store:
            AllocationEngine().submit(starved)
        assert str(with_store.value) == str(without_store.value)

    def test_corrupt_artifact_falls_back_to_fresh_computation(self, tmp_path):
        baseline = wire_body(AllocationEngine().submit(self.request()))
        configure_store(str(tmp_path / "store"), export_env=False)
        first = AllocationEngine().submit(self.request())
        store = get_store()
        path = store.path_for(first.fingerprint, "program")
        path.write_bytes(b"\x00 torn mid-write \x00")
        # Reconfigure: a fresh store instance with a cold LRU, as a
        # new process inheriting the directory would see it.
        store = configure_store(str(tmp_path / "store"), export_env=False)
        result = AllocationEngine().submit(self.request())
        assert store.corrupt >= 1
        assert wire_body(result) == baseline

    def test_unmappable_payload_is_counted_corrupt_and_recomputed(
        self, tmp_path
    ):
        """A payload naming blocks this program doesn't have (a
        fingerprint collision in effigy) rehydrates to None."""
        configure_store(str(tmp_path / "store"), export_env=False)
        first = AllocationEngine().submit(self.request())
        store = get_store()
        from repro.store import PROGRAM_ARTIFACT

        payload = store.get(first.fingerprint, PROGRAM_ARTIFACT)
        mangled = dict(payload)
        mangled["block_counts"] = [["no_such_func", "no_such_block", 3]]
        store.put(first.fingerprint, PROGRAM_ARTIFACT, mangled)
        corrupt_before = store.corrupt
        result = AllocationEngine().submit(self.request())
        assert store.corrupt == corrupt_before + 1
        assert result.report == first.report


class TestFuzzSeeds:
    @pytest.mark.parametrize("seed", [0, 7, 23, 51, 104])
    def test_generated_programs_round_trip_exactly(self, seed, tmp_path):
        source = random_source(seed)
        request = AllocationRequest(source=source, name=f"fuzz-{seed}")
        baseline = wire_body(AllocationEngine().submit(request))

        configure_store(str(tmp_path / "store"), export_env=False)
        cold = wire_body(AllocationEngine().submit(request))
        warm = wire_body(AllocationEngine().submit(request))
        assert get_store().hits >= 1
        assert cold == baseline
        assert warm == baseline
