"""The artifact store's on-disk contract: atomicity, corruption, GC.

Satellite 4 of the warm-path PR.  The properties pinned here are the
ones the tentpole leans on: a torn, truncated or garbage file is a
miss (never a crash), two processes racing to publish the same key
both succeed, and a schema-version bump silently retires every old
artifact.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

import repro.store.store as store_module
from repro.store import (
    ARTIFACT_SCHEMA_VERSION,
    ENV_VAR,
    ArtifactStore,
    configure_store,
    get_store,
)

FP = "ab" + "0" * 62
PAYLOAD = {"entry_counts": {"main": 1}, "numbers": [1, 2.5, -3]}


def make_store(tmp_path, **kwargs) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store", **kwargs)


class TestRoundTrip:
    def test_put_then_get_returns_equal_payload(self, tmp_path):
        store = make_store(tmp_path)
        assert store.put(FP, "program", PAYLOAD) is True
        assert store.get(FP, "program") == PAYLOAD
        assert store.writes == 1 and store.hits == 1

    def test_payload_survives_a_fresh_store_instance(self, tmp_path):
        make_store(tmp_path).put(FP, "program", PAYLOAD)
        reader = make_store(tmp_path)
        assert reader.get(FP, "program") == PAYLOAD

    def test_layout_is_versioned_and_sharded(self, tmp_path):
        store = make_store(tmp_path)
        path = store.path_for(FP, "program")
        assert path.parts[-3] == f"v{ARTIFACT_SCHEMA_VERSION}"
        assert path.parts[-2] == FP[:2]
        assert path.name == f"{FP}.program.json"

    def test_absent_key_is_a_plain_miss(self, tmp_path):
        store = make_store(tmp_path)
        assert store.get(FP, "program") is None
        assert store.misses == 1 and store.corrupt == 0

    def test_lru_serves_repeat_reads_without_disk(self, tmp_path):
        store = make_store(tmp_path)
        store.put(FP, "program", PAYLOAD)
        fresh = make_store(tmp_path)
        assert fresh.get(FP, "program") == PAYLOAD
        fresh.path_for(FP, "program").unlink()
        # File gone, LRU still answers.
        assert fresh.get(FP, "program") == PAYLOAD


class TestCorruption:
    """Every flavor of bad file degrades to a miss, never an error."""

    def corrupt_and_get(self, tmp_path, raw: bytes):
        store = make_store(tmp_path)
        store.put(FP, "program", PAYLOAD)
        store.path_for(FP, "program").write_bytes(raw)
        reader = make_store(tmp_path)  # cold LRU: forces the disk read
        result = reader.get(FP, "program")
        return reader, result

    def test_truncated_file_is_a_corrupt_miss(self, tmp_path):
        store = make_store(tmp_path)
        store.put(FP, "program", PAYLOAD)
        raw = store.path_for(FP, "program").read_bytes()[: len(FP) // 2]
        reader, result = self.corrupt_and_get(tmp_path, raw)
        assert result is None
        assert reader.corrupt == 1 and reader.misses == 1

    def test_garbage_bytes_are_a_corrupt_miss(self, tmp_path):
        reader, result = self.corrupt_and_get(tmp_path, b"\x00\xffnot json")
        assert result is None
        assert reader.corrupt == 1

    def test_checksum_mismatch_is_a_corrupt_miss(self, tmp_path):
        store = make_store(tmp_path)
        store.put(FP, "program", PAYLOAD)
        envelope = json.loads(store.path_for(FP, "program").read_text())
        envelope["payload"]["numbers"][0] = 999  # tampered payload
        reader, result = self.corrupt_and_get(
            tmp_path, json.dumps(envelope).encode()
        )
        assert result is None
        assert reader.corrupt == 1

    def test_wrong_fingerprint_in_envelope_is_corrupt(self, tmp_path):
        store = make_store(tmp_path)
        store.put(FP, "program", PAYLOAD)
        envelope = json.loads(store.path_for(FP, "program").read_text())
        envelope["fingerprint"] = "cd" + "0" * 62
        reader, result = self.corrupt_and_get(
            tmp_path, json.dumps(envelope).encode()
        )
        assert result is None

    def test_partially_written_tmp_files_are_invisible(self, tmp_path):
        """A writer that died mid-publish leaves only a tmp- sibling."""
        store = make_store(tmp_path)
        path = store.path_for(FP, "program")
        path.parent.mkdir(parents=True)
        (path.parent / "tmp-99999-deadbeef").write_text('{"half": ')
        assert store.get(FP, "program") is None
        assert store.corrupt == 0  # plain miss: the real file never existed
        assert store.stats()["entries"] == 0

    def test_corrupt_entry_can_be_overwritten_and_recovered(self, tmp_path):
        store = make_store(tmp_path)
        store.put(FP, "program", PAYLOAD)
        store.path_for(FP, "program").write_bytes(b"garbage")
        reader = make_store(tmp_path)
        assert reader.get(FP, "program") is None
        assert reader.put(FP, "program", PAYLOAD) is True
        assert make_store(tmp_path).get(FP, "program") == PAYLOAD


class TestSchemaVersion:
    def test_version_bump_invalidates_everything(self, tmp_path, monkeypatch):
        old = make_store(tmp_path)
        old.put(FP, "program", PAYLOAD)
        monkeypatch.setattr(
            store_module,
            "ARTIFACT_SCHEMA_VERSION",
            ARTIFACT_SCHEMA_VERSION + 1,
        )
        bumped = make_store(tmp_path)
        assert bumped.get(FP, "program") is None
        assert bumped.corrupt == 0  # stale entries are unreachable, not torn
        # The old entry still counts as on-disk bytes — and as stale.
        stats = bumped.stats()
        assert stats["entries"] == 1
        assert stats["stale_entries"] == 1

    def test_old_envelope_under_new_path_is_rejected(self, tmp_path):
        """Belt and braces: even a file *moved* into the current
        version directory fails the in-envelope version check."""
        store = make_store(tmp_path)
        store.put(FP, "program", PAYLOAD)
        path = store.path_for(FP, "program")
        envelope = json.loads(path.read_text())
        envelope["artifact_schema"] = ARTIFACT_SCHEMA_VERSION + 7
        path.write_text(json.dumps(envelope))
        reader = make_store(tmp_path)
        assert reader.get(FP, "program") is None
        assert reader.corrupt == 1


def _race_writer(root: str, index: int, queue) -> None:
    store = ArtifactStore(root)
    payload = dict(PAYLOAD, writer=index)
    queue.put((index, store.put(FP, "program", payload)))


class TestWriteRace:
    def test_two_processes_publishing_the_same_key_both_succeed(
        self, tmp_path
    ):
        root = str(tmp_path / "store")
        context = multiprocessing.get_context("fork")
        queue = context.Queue()
        writers = [
            context.Process(target=_race_writer, args=(root, i, queue))
            for i in range(2)
        ]
        for proc in writers:
            proc.start()
        results = [queue.get(timeout=30) for _ in writers]
        for proc in writers:
            proc.join(timeout=30)
            assert proc.exitcode == 0
        assert all(ok for _, ok in results)
        # Exactly one winner, its file fully intact, no tmp litter.
        reader = ArtifactStore(root)
        payload = reader.get(FP, "program")
        assert payload is not None and reader.corrupt == 0
        assert payload["writer"] in (0, 1)
        leftovers = [
            p for p in reader.path_for(FP, "program").parent.iterdir()
            if p.name.startswith("tmp-")
        ]
        assert leftovers == []


class TestMaintenance:
    def fill(self, store: ArtifactStore, count: int) -> list:
        fingerprints = [f"{i:02x}" + "e" * 62 for i in range(count)]
        for i, fp in enumerate(fingerprints):
            store.put(fp, "program", {"index": i, "pad": "x" * 64})
        return fingerprints

    def test_stats_counts_entries_bytes_and_kinds(self, tmp_path):
        store = make_store(tmp_path)
        self.fill(store, 3)
        stats = store.stats()
        assert stats["entries"] == 3
        assert stats["by_kind"] == {"program": 3}
        assert stats["bytes"] > 0
        assert stats["writes"] == 3
        assert 0.0 <= stats["hit_rate"] <= 1.0

    def test_clear_removes_everything(self, tmp_path):
        store = make_store(tmp_path)
        fingerprints = self.fill(store, 3)
        summary = store.clear()
        assert summary["removed"] == 3
        assert summary["bytes_freed"] > 0
        assert store.stats()["entries"] == 0
        # The LRU was dropped too: nothing resurrects a cleared key.
        assert store.get(fingerprints[0], "program") is None

    def test_gc_evicts_oldest_atime_first(self, tmp_path):
        store = make_store(tmp_path)
        fingerprints = self.fill(store, 4)
        paths = [store.path_for(fp, "program") for fp in fingerprints]
        # Stamp strictly increasing access times: index 0 is coldest.
        for i, path in enumerate(paths):
            os.utime(path, (1_000_000 + i * 1000, 1_000_000 + i * 1000))
        sizes = [path.stat().st_size for path in paths]
        budget = sum(sizes) - 1  # force at least one eviction
        summary = store.gc(max_bytes=budget)
        assert summary["removed"] == 1
        assert not paths[0].exists()  # the coldest entry went first
        assert all(path.exists() for path in paths[1:])
        assert summary["bytes_remaining"] <= budget

    def test_gc_respects_mtime_on_noatime_mounts(self, tmp_path):
        # On noatime/relatime mounts st_atime never advances on reads,
        # so every artifact keeps its creation atime forever.  Recency
        # must then come from mtime — which ``get`` advances on every
        # disk hit — or gc would evict in creation order no matter
        # what the workload actually uses.
        store = make_store(tmp_path)
        fingerprints = self.fill(store, 4)
        paths = [store.path_for(fp, "program") for fp in fingerprints]
        # Freeze every atime AND mtime in the stale past, as if the
        # mount had never updated atime since creation.
        for path in paths:
            os.utime(path, (1_000_000, 1_000_000))
        # A fresh store (cold LRU) reads entry 0 from disk: that hit
        # must advance its mtime even though atime stays frozen.
        reader = ArtifactStore(tmp_path / "store")
        assert reader.get(fingerprints[0], "program") is not None
        assert paths[0].stat().st_mtime > 1_000_000
        sizes = [path.stat().st_size for path in paths]
        budget = sum(sizes) - 1  # force one eviction
        summary = store.gc(max_bytes=budget)
        assert summary["removed"] == 1
        # The just-read entry survived; a never-read one went instead.
        assert paths[0].exists()
        assert not paths[1].exists()
        assert all(path.exists() for path in paths[2:])

    def test_gc_orders_by_newest_of_atime_and_mtime(self, tmp_path):
        # Mixed signals: entry 0 has a fresh atime (strictatime mount),
        # entry 1 a fresh mtime (noatime mount + read-hit touch).  Both
        # count as recently used; the untouched entry 2 must go first.
        store = make_store(tmp_path)
        fingerprints = self.fill(store, 3)
        paths = [store.path_for(fp, "program") for fp in fingerprints]
        for path in paths:
            os.utime(path, (1_000_000, 1_000_000))
        os.utime(paths[0], (2_000_000, 1_000_000))  # fresh atime only
        os.utime(paths[1], (1_000_000, 2_000_000))  # fresh mtime only
        sizes = [path.stat().st_size for path in paths]
        summary = store.gc(max_bytes=sum(sizes) - 1)
        assert summary["removed"] == 1
        assert paths[0].exists() and paths[1].exists()
        assert not paths[2].exists()

    def test_gc_is_a_noop_under_budget(self, tmp_path):
        store = make_store(tmp_path)
        self.fill(store, 2)
        summary = store.gc(max_bytes=10**9)
        assert summary == {
            "removed": 0,
            "bytes_freed": 0,
            "bytes_remaining": store.stats()["bytes"],
        }


class TestConfiguration:
    def test_disabled_by_default(self):
        assert get_store() is None

    def test_configure_store_activates_and_exports(self, tmp_path):
        root = tmp_path / "store"
        store = configure_store(str(root))
        try:
            assert get_store() is store
            assert os.environ[ENV_VAR] == str(root)
        finally:
            configure_store(None)
        assert get_store() is None
        assert ENV_VAR not in os.environ

    def test_environment_variable_alone_enables(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_VAR, str(tmp_path / "env-store"))
        store = get_store()
        assert store is not None
        assert store.root == tmp_path / "env-store"
        # Cached: the same store object answers again.
        assert get_store() is store

    def test_explicit_configuration_beats_the_environment(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(ENV_VAR, str(tmp_path / "env-store"))
        store = configure_store(str(tmp_path / "explicit"), export_env=False)
        assert get_store() is store


class TestFailureSwallowing:
    def test_unwritable_root_fails_put_quietly(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file where the store root should be")
        store = ArtifactStore(blocked)
        assert store.put(FP, "program", PAYLOAD) is False
        assert store.writes == 0

    def test_unserializable_payload_raises_for_direct_put(self, tmp_path):
        # ArtifactStore.put is strict; the swallow-everything contract
        # lives one layer up in save_program_artifact.
        store = make_store(tmp_path)
        with pytest.raises(TypeError):
            store.put(FP, "program", {"bad": object()})
