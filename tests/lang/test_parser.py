"""Unit tests for the mini-C parser."""

import pytest

from repro.ir import FLOAT, INT
from repro.lang import ParseError, parse
from repro.lang import ast


def parse_stmts(body: str):
    unit = parse("void main() { %s }" % body)
    return unit.functions[0].body.statements


def parse_expr(expr: str):
    stmts = parse_stmts(f"int x = {expr};")
    return stmts[0].init


class TestTopLevel:
    def test_globals_and_functions(self):
        unit = parse(
            """
            int g[8];
            float h[4] = {1.5, -2.0, 3};
            int f(int a) { return a; }
            void main() { }
            """
        )
        assert [g.name for g in unit.globals] == ["g", "h"]
        assert unit.globals[0].elem_type is INT
        assert unit.globals[1].init == [1.5, -2.0, 3]
        assert [f.name for f in unit.functions] == ["f", "main"]
        assert unit.functions[0].return_type is INT
        assert unit.functions[1].return_type is None

    def test_params(self):
        unit = parse("int f(int a, float b) { return a; }")
        params = unit.functions[0].params
        assert [(p.name, p.param_type) for p in params] == [("a", INT), ("b", FLOAT)]

    def test_global_without_initializer(self):
        unit = parse("float g[16];")
        assert unit.globals[0].init is None
        assert unit.globals[0].size == 16

    def test_junk_at_top_level(self):
        with pytest.raises(ParseError, match="declaration"):
            parse("return 2;")


class TestStatements:
    def test_declaration_with_init(self):
        (stmt,) = parse_stmts("int x = 5;")
        assert isinstance(stmt, ast.DeclStmt)
        assert stmt.name == "x"
        assert isinstance(stmt.init, ast.IntLit)

    def test_assignment(self):
        stmts = parse_stmts("int x = 1; x = 2;")
        assert isinstance(stmts[1], ast.AssignStmt)

    def test_array_assignment(self):
        unit = parse("int g[4]; void main() { g[2] = 7; }")
        stmt = unit.functions[0].body.statements[0]
        assert isinstance(stmt, ast.ArrayAssignStmt)
        assert stmt.array == "g"

    def test_bad_assignment_target(self):
        with pytest.raises(ParseError, match="assignment target"):
            parse_stmts("1 + 2 = 3;")

    def test_if_else_chain(self):
        (stmt,) = parse_stmts(
            "if (1) { } else if (2) { } else { }"
        )
        assert isinstance(stmt, ast.IfStmt)
        nested = stmt.else_body.statements[0]
        assert isinstance(nested, ast.IfStmt)
        assert nested.else_body is not None

    def test_while(self):
        (stmt,) = parse_stmts("while (1) { break; continue; }")
        assert isinstance(stmt, ast.WhileStmt)
        body = stmt.body.statements
        assert isinstance(body[0], ast.BreakStmt)
        assert isinstance(body[1], ast.ContinueStmt)

    def test_for_full(self):
        (stmt,) = parse_stmts("for (int i = 0; i < 4; i = i + 1) { }")
        assert isinstance(stmt, ast.ForStmt)
        assert isinstance(stmt.init, ast.DeclStmt)
        assert isinstance(stmt.cond, ast.BinaryExpr)
        assert isinstance(stmt.step, ast.AssignStmt)

    def test_for_empty_clauses(self):
        (stmt,) = parse_stmts("for (;;) { break; }")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_return_forms(self):
        stmts = parse_stmts("return;")
        assert stmts[0].value is None
        unit = parse("int f() { return 3; }")
        assert isinstance(unit.functions[0].body.statements[0].value, ast.IntLit)

    def test_nested_block(self):
        (stmt,) = parse_stmts("{ int y = 1; }")
        assert isinstance(stmt, ast.Block)

    def test_expression_statement(self):
        unit = parse("void f() { } void main() { f(); }")
        stmt = unit.functions[1].body.statements[0]
        assert isinstance(stmt, ast.ExprStmt)
        assert isinstance(stmt.expr, ast.CallExpr)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.rhs.op == "*"

    def test_precedence_compare_over_and(self):
        expr = parse_expr("1 < 2 && 3 > 4")
        assert expr.op == "&&"
        assert expr.lhs.op == "<"

    def test_precedence_and_over_or(self):
        expr = parse_expr("1 || 2 && 3")
        assert expr.op == "||"
        assert expr.rhs.op == "&&"

    def test_left_associativity(self):
        expr = parse_expr("10 - 4 - 3")
        assert expr.op == "-"
        assert expr.lhs.op == "-"
        assert expr.rhs.value == 3

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.lhs.op == "+"

    def test_unary_chain(self):
        expr = parse_expr("--5")
        assert isinstance(expr, ast.UnaryExpr)
        assert isinstance(expr.operand, ast.UnaryExpr)

    def test_not_operator(self):
        expr = parse_expr("!0")
        assert expr.op == "!"

    def test_call_with_args(self):
        unit = parse("int f(int a, int b) { return a; } void main() { int x = f(1, 2 + 3); }")
        call = unit.functions[1].body.statements[0].init
        assert isinstance(call, ast.CallExpr)
        assert len(call.args) == 2

    def test_array_reference(self):
        unit = parse("int g[4]; void main() { int x = g[1 + 2]; }")
        ref = unit.functions[0].body.statements[0].init
        assert isinstance(ref, ast.ArrayRef)

    def test_float_literal(self):
        expr = parse_stmts("float y = 2.5;")[0].init
        assert isinstance(expr, ast.FloatLit)
        assert expr.value == 2.5

    def test_missing_expression(self):
        with pytest.raises(ParseError, match="expected expression"):
            parse_stmts("int x = ;")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_stmts("int x = (1 + 2;")

    def test_negative_global_initializer(self):
        unit = parse("float g[2] = {-1.5, -2};")
        assert unit.globals[0].init == [-1.5, -2]
