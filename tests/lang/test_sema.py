"""Unit tests for semantic analysis."""

import pytest

from repro.lang import SemanticError, analyze, parse


def check(source: str):
    unit = parse(source)
    return analyze(unit)


def check_body(body: str, prelude: str = ""):
    return check(f"{prelude}\nvoid main() {{ {body} }}")


class TestScoping:
    def test_undeclared_variable(self):
        with pytest.raises(SemanticError, match="unknown variable"):
            check_body("int x = y;")

    def test_assignment_to_undeclared(self):
        with pytest.raises(SemanticError, match="undeclared"):
            check_body("x = 1;")

    def test_redeclaration_same_scope(self):
        with pytest.raises(SemanticError, match="redeclaration"):
            check_body("int x = 1; int x = 2;")

    def test_shadowing_in_nested_block_allowed(self):
        check_body("int x = 1; { int x = 2; x = 3; } x = 4;")

    def test_for_init_scoped_to_loop(self):
        with pytest.raises(SemanticError, match="undeclared"):
            check_body("for (int i = 0; i < 3; i = i + 1) { } i = 5;")

    def test_block_scope_does_not_leak(self):
        with pytest.raises(SemanticError, match="undeclared"):
            check_body("{ int y = 1; } y = 2;")

    def test_duplicate_function(self):
        with pytest.raises(SemanticError, match="redeclaration of function"):
            check("void f() { } void f() { } void main() { }")

    def test_builtin_name_collision(self):
        with pytest.raises(SemanticError, match="redeclaration"):
            check("int itof(int x) { return x; } void main() { }")

    def test_duplicate_global(self):
        with pytest.raises(SemanticError, match="redeclaration of global"):
            check("int g[4]; int g[4]; void main() { }")


class TestTypes:
    def test_mixed_arithmetic_rejected(self):
        with pytest.raises(SemanticError, match="itof/ftoi"):
            check_body("float f = 1.0 + 1;")

    def test_explicit_conversion_accepted(self):
        check_body("float f = 1.0 + itof(1); int i = ftoi(f) + 2;")

    def test_mod_requires_ints(self):
        with pytest.raises(SemanticError, match="'%'"):
            check_body("float f = 1.5 % 2.0;")

    def test_logical_requires_ints(self):
        with pytest.raises(SemanticError, match="'&&'"):
            check_body("int x = 1.5 && 2.5;")

    def test_not_requires_int(self):
        with pytest.raises(SemanticError, match="'!'"):
            check_body("int x = !1.5;")

    def test_comparison_yields_int(self):
        check_body("int x = 1.5 < 2.5;")
        with pytest.raises(SemanticError):
            check_body("float f = 1.5 < 2.5;")

    def test_condition_must_be_int(self):
        with pytest.raises(SemanticError, match="condition"):
            check_body("if (1.5) { }")
        with pytest.raises(SemanticError, match="condition"):
            check_body("while (2.5) { }")

    def test_decl_init_type(self):
        with pytest.raises(SemanticError, match="initializing"):
            check_body("int x = 1.5;")

    def test_assignment_type(self):
        with pytest.raises(SemanticError, match="assigning"):
            check_body("float f = 1.0; f = 3;")

    def test_unary_minus_keeps_type(self):
        check_body("float f = -1.5; int i = -3;")


class TestArrays:
    def test_unknown_array(self):
        with pytest.raises(SemanticError, match="unknown array"):
            check_body("int x = ghost[0];")

    def test_index_must_be_int(self):
        with pytest.raises(SemanticError, match="index"):
            check_body("int x = g[1.5];", prelude="int g[4];")

    def test_store_element_type(self):
        with pytest.raises(SemanticError, match="storing"):
            check_body("g[0] = 1.5;", prelude="int g[4];")

    def test_element_type_flows(self):
        check_body("float f = g[0] * 2.0;", prelude="float g[4];")


class TestCallsAndReturns:
    def test_unknown_function(self):
        with pytest.raises(SemanticError, match="unknown function"):
            check_body("int x = ghost(1);")

    def test_arity(self):
        with pytest.raises(SemanticError, match="expects 2 arguments"):
            check("int f(int a, int b) { return a; } void main() { int x = f(1); }")

    def test_argument_types(self):
        with pytest.raises(SemanticError, match="argument of type"):
            check("int f(float a) { return 1; } void main() { int x = f(2); }")

    def test_void_function_as_value(self):
        with pytest.raises(SemanticError, match="used as a value"):
            check("void f() { } void main() { int x = f(); }")

    def test_void_call_as_statement_ok(self):
        check("void f() { } void main() { f(); }")

    def test_forward_calls_allowed(self):
        check("void main() { later(); } void later() { }")

    def test_return_value_from_void(self):
        with pytest.raises(SemanticError, match="returns a value"):
            check("void f() { return 1; } void main() { }")

    def test_return_nothing_from_nonvoid(self):
        with pytest.raises(SemanticError, match="returns nothing"):
            check("int f() { return; } void main() { }")

    def test_return_type_mismatch(self):
        with pytest.raises(SemanticError, match="returning"):
            check("int f() { return 1.5; } void main() { }")

    def test_builtin_arity_and_types(self):
        with pytest.raises(SemanticError, match="exactly one"):
            check_body("float f = itof(1, 2);")
        with pytest.raises(SemanticError, match="requires"):
            check_body("float f = itof(1.5);")


class TestControlPlacement:
    def test_break_outside_loop(self):
        with pytest.raises(SemanticError, match="break outside"):
            check_body("break;")

    def test_continue_outside_loop(self):
        with pytest.raises(SemanticError, match="continue outside"):
            check_body("continue;")

    def test_break_in_if_inside_loop_ok(self):
        check_body("while (1) { if (1) { break; } }")

    def test_annotations_attached(self):
        unit = parse("void main() { int x = 3; x = x + 1; }")
        analyze(unit)
        decl, assign = unit.functions[0].body.statements
        assert decl.symbol.name == "x"
        assert assign.symbol is decl.symbol
        assert assign.value.vtype is not None
