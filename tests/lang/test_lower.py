"""Lowering tests: execute lowered programs and check their semantics.

Rather than asserting exact instruction sequences, these tests run the
lowered IR through the interpreter and compare against the values the
mini-C semantics prescribe — the most robust way to pin down the
lowering of each construct.
"""

import pytest

from repro.ir import verify_program
from repro.lang import compile_source
from repro.profile import run_program


def run_main(body: str, prelude: str = "int out[8];") -> list:
    source = f"{prelude}\nvoid main() {{ {body} }}"
    program = compile_source(source)
    verify_program(program)
    return run_program(program).globals_state["out"]


class TestExpressions:
    def test_arithmetic(self):
        out = run_main("out[0] = 7 + 3 * 4 - 10 / 3;")
        assert out[0] == 7 + 12 - 3

    def test_c_division_semantics(self):
        out = run_main(
            "out[0] = -7 / 2; out[1] = -7 % 2; out[2] = 7 % -2; out[3] = 7 / -2;"
        )
        assert out[:4] == [-3, -1, 1, -3]  # trunc toward zero, C99

    def test_comparisons(self):
        out = run_main(
            "out[0] = 1 < 2; out[1] = 2 <= 1; out[2] = 3 == 3; out[3] = 3 != 3;"
        )
        assert out[:4] == [1, 0, 1, 0]

    def test_logical_normalize(self):
        # && / || normalize arbitrary non-zero values to 0/1.
        out = run_main("out[0] = 5 && 7; out[1] = 0 || 9; out[2] = 0 && 3;")
        assert out[:3] == [1, 1, 0]

    def test_not(self):
        out = run_main("out[0] = !0; out[1] = !17;")
        assert out[:2] == [1, 0]

    def test_unary_minus(self):
        out = run_main("int x = 5; out[0] = -x; out[1] = --x;")
        assert out[:2] == [-5, 5]

    def test_conversions(self):
        out = run_main("out[0] = ftoi(2.75); out[1] = ftoi(itof(9) * 0.5);")
        assert out[:2] == [2, 4]

    def test_float_arithmetic(self):
        source = """
        float fout[2];
        void main() { fout[0] = (1.5 + 2.5) * 0.25; fout[1] = 10.0 / 4.0; }
        """
        program = compile_source(source)
        state = run_program(program).globals_state
        assert state["fout"] == [1.0, 2.5]


class TestStatements:
    def test_decl_without_init_is_zero(self):
        out = run_main("int x; out[0] = x; out[1] = 3;")
        assert out[:2] == [0, 3]

    def test_if_else(self):
        out = run_main("if (1 > 2) { out[0] = 1; } else { out[0] = 2; }")
        assert out[0] == 2

    def test_if_without_else(self):
        out = run_main("out[0] = 9; if (0) { out[0] = 1; }")
        assert out[0] == 9

    def test_while_loop(self):
        out = run_main("int i = 0; int s = 0; while (i < 5) { s = s + i; i = i + 1; } out[0] = s;")
        assert out[0] == 10

    def test_for_loop(self):
        out = run_main("int s = 0; for (int i = 1; i <= 4; i = i + 1) { s = s * 10 + i; } out[0] = s;")
        assert out[0] == 1234

    def test_break(self):
        out = run_main(
            "int i = 0; while (1) { if (i == 3) { break; } i = i + 1; } out[0] = i;"
        )
        assert out[0] == 3

    def test_continue_in_for_runs_step(self):
        out = run_main(
            "int s = 0; for (int i = 0; i < 6; i = i + 1) {"
            " if (i % 2 == 0) { continue; } s = s + i; } out[0] = s;"
        )
        assert out[0] == 1 + 3 + 5

    def test_continue_in_while(self):
        out = run_main(
            "int i = 0; int s = 0; while (i < 5) { i = i + 1;"
            " if (i == 2) { continue; } s = s + i; } out[0] = s;"
        )
        assert out[0] == 1 + 3 + 4 + 5

    def test_nested_loops(self):
        out = run_main(
            "int s = 0; for (int i = 0; i < 3; i = i + 1) {"
            " for (int j = 0; j < 3; j = j + 1) { s = s + i * j; } } out[0] = s;"
        )
        assert out[0] == sum(i * j for i in range(3) for j in range(3))

    def test_early_return_skips_rest(self):
        source = """
        int out[2];
        int f(int x) { if (x > 0) { return 1; } return 2; }
        void main() { out[0] = f(5); out[1] = f(-5); }
        """
        program = compile_source(source)
        assert run_program(program).globals_state["out"] == [1, 2]

    def test_implicit_return_zero(self):
        source = """
        int out[1];
        int f(int x) { if (x > 0) { return 7; } }
        void main() { out[0] = f(-1); }
        """
        program = compile_source(source)
        verify_program(program)
        assert run_program(program).globals_state["out"] == [0]

    def test_unreachable_code_after_return_dropped(self):
        source = """
        int f() { return 1; }
        void main() { int x = f(); }
        """
        program = compile_source(source)
        verify_program(program)


class TestCallsAndGlobals:
    def test_recursion(self):
        source = """
        int out[1];
        int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
        void main() { out[0] = fact(6); }
        """
        program = compile_source(source)
        assert run_program(program).globals_state["out"] == [720]

    def test_mutual_recursion(self):
        source = """
        int out[2];
        int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
        void main() { out[0] = is_even(10); out[1] = is_odd(7); }
        """
        program = compile_source(source)
        assert run_program(program).globals_state["out"] == [1, 1]

    def test_global_initializers(self):
        source = """
        int g[4] = {5, 6};
        int out[4];
        void main() { out[0] = g[0]; out[1] = g[1]; out[2] = g[2]; }
        """
        program = compile_source(source)
        assert run_program(program).globals_state["out"][:3] == [5, 6, 0]

    def test_argument_evaluation_order(self):
        source = """
        int out[1];
        int trace[4];
        int counter[1];
        int tick(int v) { trace[counter[0]] = v; counter[0] = counter[0] + 1; return v; }
        int pair(int a, int b) { return a * 10 + b; }
        void main() { out[0] = pair(tick(1), tick(2)); }
        """
        program = compile_source(source)
        state = run_program(program).globals_state
        assert state["out"] == [12]
        assert state["trace"][:2] == [1, 2]  # left to right

    def test_profile_counts_match_execution(self):
        source = """
        int out[1];
        int id(int x) { return x; }
        void main() { for (int i = 0; i < 7; i = i + 1) { out[0] = id(i); } }
        """
        program = compile_source(source)
        result = run_program(program)
        assert result.profile.entries("id") == 7
        assert result.profile.entries("main") == 1
