"""Unit tests for the mini-C lexer."""

import pytest

from repro.lang import LexError, tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]  # drop EOF


class TestBasics:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_keywords_vs_identifiers(self):
        tokens = tokenize("int interest if iffy")
        assert [t.kind for t in tokens[:-1]] == [
            TokenKind.KW_INT,
            TokenKind.IDENT,
            TokenKind.KW_IF,
            TokenKind.IDENT,
        ]

    def test_all_keywords(self):
        source = "int float void if else while for return break continue"
        expected = [
            TokenKind.KW_INT,
            TokenKind.KW_FLOAT,
            TokenKind.KW_VOID,
            TokenKind.KW_IF,
            TokenKind.KW_ELSE,
            TokenKind.KW_WHILE,
            TokenKind.KW_FOR,
            TokenKind.KW_RETURN,
            TokenKind.KW_BREAK,
            TokenKind.KW_CONTINUE,
        ]
        assert kinds(source)[:-1] == expected

    def test_identifiers_with_underscores_and_digits(self):
        assert texts("_x x_1 x2y") == ["_x", "x_1", "x2y"]


class TestNumbers:
    def test_int_literal(self):
        token = tokenize("42")[0]
        assert token.kind is TokenKind.INT_LIT
        assert token.text == "42"

    def test_float_with_point(self):
        token = tokenize("3.25")[0]
        assert token.kind is TokenKind.FLOAT_LIT
        assert token.text == "3.25"

    def test_float_with_exponent(self):
        for text in ("2e3", "2E3", "1.5e-3", "2e+4"):
            token = tokenize(text)[0]
            assert token.kind is TokenKind.FLOAT_LIT, text
            assert token.text == text

    def test_int_then_member_like_dot_not_float(self):
        # "5." without a following digit is not a float literal.
        with pytest.raises(LexError):
            tokenize("5.")

    def test_adjacent_number_and_ident(self):
        tokens = tokenize("12abc")
        assert tokens[0].kind is TokenKind.INT_LIT
        assert tokens[1].kind is TokenKind.IDENT


class TestOperators:
    def test_two_char_operators_win(self):
        source = "== != <= >= && ||"
        expected = [
            TokenKind.EQ,
            TokenKind.NE,
            TokenKind.LE,
            TokenKind.GE,
            TokenKind.AND_AND,
            TokenKind.OR_OR,
        ]
        assert kinds(source)[:-1] == expected

    def test_one_char_operators(self):
        source = "+ - * / % ! < > = ( ) { } [ ] , ;"
        assert len(kinds(source)) == 18  # 17 tokens + EOF

    def test_lt_followed_by_eq_separately(self):
        assert kinds("< =")[:-1] == [TokenKind.LT, TokenKind.ASSIGN]


class TestTrivia:
    def test_line_comments_skipped(self):
        assert texts("a // comment here\n b") == ["a", "b"]

    def test_block_comments_skipped(self):
        assert texts("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("a /* never ends")

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(LexError, match="unexpected"):
            tokenize("a $ b")

    def test_error_carries_position(self):
        with pytest.raises(LexError, match="2:"):
            tokenize("ok\n@")
