"""Unit tests for the machine model (register file and sweep)."""

import pytest

from repro.ir import FLOAT, INT
from repro.machine import (
    FULL_CONFIG,
    MIN_CONFIG,
    RegisterConfig,
    RegisterFile,
    RegisterKind,
    full_register_file,
    mips_sweep,
    register_file,
)


class TestRegisterConfig:
    def test_counts_per_bank(self):
        config = RegisterConfig(6, 4, 2, 1)
        assert config.counts(INT) == (6, 2)
        assert config.counts(FLOAT) == (4, 1)
        assert config.total == 13

    def test_str_matches_paper_notation(self):
        assert str(RegisterConfig(6, 4, 0, 0)) == "(6,4,0,0)"


class TestRegisterFile:
    def test_bank_sizes(self):
        rf = RegisterFile(RegisterConfig(5, 3, 2, 1))
        assert len(rf.bank(INT).caller) == 5
        assert len(rf.bank(INT).callee) == 2
        assert len(rf.bank(FLOAT).caller) == 3
        assert len(rf.bank(FLOAT).callee) == 1
        assert rf.bank(INT).num_regs == 7

    def test_register_kinds_and_names(self):
        rf = RegisterFile(RegisterConfig(2, 2, 2, 2))
        int_bank = rf.bank(INT)
        assert all(p.is_caller_save for p in int_bank.caller)
        assert all(p.is_callee_save for p in int_bank.callee)
        names = {p.name for p in rf.all_registers()}
        assert len(names) == 8  # all distinct

    def test_of_kind(self):
        rf = RegisterFile(RegisterConfig(2, 1, 3, 1))
        bank = rf.bank(INT)
        assert bank.of_kind(RegisterKind.CALLER_SAVE) == bank.caller
        assert bank.of_kind(RegisterKind.CALLEE_SAVE) == bank.callee

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            RegisterFile(RegisterConfig(-1, 2, 2, 2))

    def test_rejects_empty_banks(self):
        with pytest.raises(ValueError):
            RegisterFile(RegisterConfig(0, 4, 0, 2))
        with pytest.raises(ValueError):
            RegisterFile(RegisterConfig(4, 0, 2, 0))

    def test_registers_hashable_and_stable(self):
        a = RegisterFile(RegisterConfig(3, 2, 1, 1))
        b = RegisterFile(RegisterConfig(3, 2, 1, 1))
        assert set(a.all_registers()) == set(b.all_registers())


class TestSweep:
    def test_sweep_bounds(self):
        sweep = mips_sweep()
        assert sweep[0] == MIN_CONFIG
        assert sweep[-1] == FULL_CONFIG

    def test_sweep_monotone_nondecreasing(self):
        sweep = mips_sweep()
        for earlier, later in zip(sweep, sweep[1:]):
            for a, b in zip(earlier, later):
                assert b >= a

    def test_sweep_strictly_grows_total(self):
        sweep = mips_sweep()
        totals = [c.total for c in sweep]
        assert totals == sorted(set(totals))

    def test_sweep_all_valid_register_files(self):
        for config in mips_sweep():
            register_file(config)  # must not raise

    def test_full_register_file_totals(self):
        rf = full_register_file()
        assert rf.bank(INT).num_regs == 26
        assert rf.bank(FLOAT).num_regs == 16
