"""``explain_live_range`` tests: the printed numbers are the model's.

The headline assertion (satellite d): the benefit values an
explanation reports equal the values ``regalloc/benefits.py`` computes
from the allocation's own live-range table — the explanation is a
faithful view of the cost model, not a reimplementation of it.
"""

import pytest

from repro.analysis.frequency import static_weights
from repro.lang import compile_source
from repro.machine import RegisterConfig, register_file
from repro.obs import ExplainError, explain_live_range
from repro.regalloc import PRESETS, allocate_program
from repro.regalloc.benefits import callee_save_cost, compute_benefits

SOURCE = """
int out[4];
int helper(int x) { return x * 3 + 1; }
void main() {
    int total = 0;
    int i = 0;
    while (i < 20) {
        total = total + helper(i);
        i = i + 1;
    }
    out[0] = total;
}
"""

CONFIG = RegisterConfig(6, 4, 2, 2)


def _program():
    return compile_source(SOURCE)


def _explain(lr, **kwargs):
    return explain_live_range(
        _program(), lr, register_file(CONFIG), PRESETS["improved"](), **kwargs
    )


def test_benefits_match_the_benefit_module():
    """The explanation's numbers equal ``compute_benefits`` output."""
    explanation = _explain("total")
    allocation = allocate_program(
        _program(), register_file(CONFIG), PRESETS["improved"]()
    )
    fa = allocation.functions["main"]
    reg = next(r for r in fa.infos if r.name == "total")
    weights = static_weights(fa.func)
    table = compute_benefits(fa.infos, weights)
    assert explanation.spill_cost == fa.infos[reg].spill_cost
    assert explanation.caller_cost == fa.infos[reg].caller_cost
    assert explanation.callee_cost == callee_save_cost(weights)
    assert explanation.benefit_caller == table[reg].caller
    assert explanation.benefit_callee == table[reg].callee
    assert explanation.prefers_callee == table[reg].prefers_callee


def test_benefit_arithmetic_is_the_papers():
    explanation = _explain("total")
    assert (
        explanation.benefit_caller
        == explanation.spill_cost - explanation.caller_cost
    )
    assert (
        explanation.benefit_callee
        == explanation.spill_cost - explanation.callee_cost
    )


def test_decision_chain_and_verdict():
    explanation = _explain("total")
    assert explanation.function == "main"
    assert explanation.lr.endswith(":total")
    assert explanation.chain
    assert explanation.decision != "no placement decision recorded"
    assert explanation.verified is True


def test_matches_by_name_repr_and_id():
    by_name = _explain("total")
    by_repr = _explain(by_name.lr)
    head = by_name.lr.partition(":")[0]
    by_id = _explain(head, func_name="main")
    assert by_name.lr == by_repr.lr == by_id.lr
    assert by_name.benefit_caller == by_repr.benefit_caller


def test_unknown_live_range_lists_candidates():
    with pytest.raises(ExplainError) as excinfo:
        _explain("nonexistent")
    message = str(excinfo.value)
    assert "nonexistent" in message
    assert "total" in message  # the hint names the known ranges


def test_func_restriction():
    explanation = _explain("x", func_name="helper")
    assert explanation.function == "helper"
    with pytest.raises(ExplainError):
        _explain("x", func_name="main")


def test_spilled_live_range_is_explainable():
    """A spilled range is absent from the assignment but the event
    stream still justifies its fate."""
    program = compile_source(SOURCE)
    rf = register_file(RegisterConfig(2, 2, 0, 1))
    allocation = allocate_program(program, rf, PRESETS["base"]())
    spilled = [
        reg
        for fa in allocation.functions.values()
        for reg in fa.spilled
    ]
    assert spilled, "expected the tiny register file to force a spill"
    target = repr(spilled[0])
    explanation = explain_live_range(
        compile_source(SOURCE), target, rf, PRESETS["base"]()
    )
    assert "spill" in explanation.decision
    assert explanation.chain


def test_render_contains_the_numbers():
    explanation = _explain("total")
    text = explanation.render()
    assert f"{explanation.benefit_caller:g}" in text
    assert f"{explanation.benefit_callee:g}" in text
    assert "decision chain:" in text
    assert "allocation verifier: passed" in text


def test_as_dict_is_json_ready():
    import json

    json.dumps(_explain("total").as_dict())
