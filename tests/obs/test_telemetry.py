"""Request telemetry primitives: spans, flight recorder, SLO, logs.

Unit-level coverage of :mod:`repro.obs.telemetry` and friends — the
serving-stack integration (real HTTP, real forked workers) lives in
``tests/serve/test_telemetry.py``.
"""

import json
import os
import time

from repro.obs import (
    FlightEntry,
    FlightRecorder,
    JsonlLogger,
    LATENCY_BUCKETS_MS,
    MetricsRegistry,
    SLOTargets,
    SLOTracker,
    Span,
    SpanClock,
    attempt_outcomes,
    breakdown,
    dedupe_spans,
    mint_span_id,
    mint_trace_id,
    open_access_log,
    render_prometheus,
    render_slo_prometheus,
    reparent,
    request_chrome_trace,
    request_trace_events,
    span_tree,
    spans_from_phases,
    trace_epoch_base,
)
from repro.obs.metrics import BucketedData
from repro.obs.tracer import PhaseSpan


class TestIdentity:
    def test_trace_ids_are_64_bit_hex_and_distinct(self):
        ids = {mint_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for tid in ids:
            assert len(tid) == 16
            int(tid, 16)

    def test_span_ids_are_32_bit_hex(self):
        sid = mint_span_id()
        assert len(sid) == 8
        int(sid, 16)


class TestSpanClock:
    def test_begin_end_produces_child_span(self):
        clock = SpanClock("t" * 16)
        token = clock.begin("dispatch", parent_id="abcd1234")
        span = clock.end(token, outcome="ok", attempt=1)
        assert span.trace_id == "t" * 16
        assert span.name == "dispatch"
        assert span.parent_id == "abcd1234"
        assert span.pid == os.getpid()
        assert span.duration >= 0
        assert span.attrs == {"outcome": "ok", "attempt": 1}

    def test_point_span_keeps_given_times(self):
        clock = SpanClock("t" * 16)
        span = clock.point("queue-wait", start=123.5, duration=0.25,
                           bulkhead="interactive")
        assert span.start == 123.5
        assert span.duration == 0.25
        assert span.attrs["bulkhead"] == "interactive"

    def test_to_dict_from_dict_round_trip(self):
        clock = SpanClock(mint_trace_id())
        span = clock.end(clock.begin("worker-exec"), preset="improved")
        record = span.to_dict()
        assert record["duration_ms"] == round(span.duration * 1000.0, 3)
        back = Span.from_dict(record)
        assert back.trace_id == span.trace_id
        assert back.span_id == span.span_id
        assert back.name == span.name
        assert back.pid == span.pid
        assert back.attrs == span.attrs


class TestEnginePhaseSpans:
    def test_phase_spans_become_engine_children(self):
        phases = [
            PhaseSpan(name="build", function="main", iteration=1,
                      start=10.0, duration=0.001, pid=42),
            PhaseSpan(name="assign", function="main", iteration=1,
                      start=10.1, duration=0.002, pid=42),
        ]
        spans = spans_from_phases("f" * 16, "parent01", phases)
        assert [s.name for s in spans] == ["engine:build", "engine:assign"]
        for span in spans:
            assert span.parent_id == "parent01"
            assert span.pid == 42
            assert span.attrs["function"] == "main"


class TestTreeMerging:
    def _dict(self, name, span_id, parent_id=None, start=0.0,
              duration_ms=1.0, **attrs):
        record = {
            "trace_id": "t" * 16,
            "span_id": span_id,
            "name": name,
            "start": start,
            "duration_ms": duration_ms,
            "pid": 1,
        }
        if parent_id is not None:
            record["parent_id"] = parent_id
        if attrs:
            record["attrs"] = attrs
        return record

    def test_reparent_attaches_only_roots(self):
        worker = [
            self._dict("worker-exec", "w1"),
            self._dict("engine:build", "w2", parent_id="w1"),
        ]
        merged = reparent(worker, "dispatch1")
        assert merged[0]["parent_id"] == "dispatch1"
        assert merged[1]["parent_id"] == "w1"

    def test_dedupe_drops_echoed_job_spans(self):
        job = self._dict("queue-wait", "q1")
        spans = [job, self._dict("worker-exec", "w1"), dict(job)]
        unique = dedupe_spans(spans)
        assert [s["span_id"] for s in unique] == ["q1", "w1"]

    def test_span_tree_nests_and_sorts_by_start(self):
        spans = [
            self._dict("ingress", "root", start=1.0),
            self._dict("dispatch", "d2", parent_id="root", start=3.0),
            self._dict("queue-wait", "q1", parent_id="root", start=2.0),
        ]
        roots = span_tree(spans)
        assert len(roots) == 1
        names = [child["name"] for child in roots[0]["children"]]
        assert names == ["queue-wait", "dispatch"]

    def test_span_tree_promotes_orphans(self):
        spans = [self._dict("worker-exec", "w1", parent_id="gone")]
        roots = span_tree(spans)
        assert len(roots) == 1
        assert roots[0]["name"] == "worker-exec"

    def test_breakdown_buckets_by_vocabulary(self):
        spans = [
            self._dict("ingress", "a", duration_ms=10.0),
            self._dict("queue-wait", "b", duration_ms=2.0),
            self._dict("dispatch", "c", duration_ms=6.0),
            self._dict("worker-exec", "d", duration_ms=5.0),
            self._dict("engine:build", "e", duration_ms=1.5),
            self._dict("engine:assign", "f", duration_ms=0.5),
        ]
        decomposed = breakdown(spans)
        assert decomposed == {
            "dispatch_ms": 6.0,
            "engine_ms": 2.0,
            "queue_ms": 2.0,
            "service_ms": 5.0,
            "total_ms": 10.0,
        }

    def test_attempt_outcomes_orders_by_attempt(self):
        spans = [
            self._dict("dispatch", "d2", outcome="ok", attempt=2),
            self._dict("dispatch", "d1", outcome="crash", attempt=1),
            self._dict("worker-exec", "w1"),
        ]
        assert attempt_outcomes(spans) == ["crash", "ok"]


def _entry(trace_id, duration_ms=5.0, degraded=False, faulted=False,
           status=200):
    return FlightEntry(
        trace_id=trace_id,
        path="/allocate",
        status=status,
        outcome="ok" if status == 200 else "error",
        duration_ms=duration_ms,
        preset="improved",
        degraded=degraded,
        faulted=faulted,
        spans=[{
            "trace_id": trace_id, "span_id": "s1", "name": "ingress",
            "start": 1.0, "duration_ms": duration_ms, "pid": 1,
        }],
    )


class TestFlightRecorder:
    def test_lookup_resolves_recent_entries(self):
        recorder = FlightRecorder(recent=4)
        recorder.record(_entry("a" * 16))
        entry = recorder.lookup("a" * 16)
        assert entry is not None
        full = entry.full()
        assert full["breakdown"]["total_ms"] > 0
        assert full["tree"][0]["name"] == "ingress"

    def test_slowest_ring_evicts_fastest(self):
        recorder = FlightRecorder(recent=2, slowest=2)
        recorder.record(_entry("fast000000000000", duration_ms=1.0))
        recorder.record(_entry("slow000000000000", duration_ms=100.0))
        recorder.record(_entry("mid0000000000000", duration_ms=50.0))
        index = recorder.index()
        slowest = [row["trace_id"] for row in index["slowest"]]
        assert slowest == ["slow000000000000", "mid0000000000000"]

    def test_slow_entry_survives_recent_wraparound(self):
        recorder = FlightRecorder(recent=2, slowest=4)
        recorder.record(_entry("slow000000000000", duration_ms=100.0))
        for index in range(8):
            recorder.record(_entry(f"f{index:015d}", duration_ms=1.0))
        assert recorder.lookup("slow000000000000") is not None

    def test_degraded_and_faulted_views(self):
        recorder = FlightRecorder()
        recorder.record(_entry("d" * 16, degraded=True))
        recorder.record(_entry("f" * 16, faulted=True, status=500))
        index = recorder.index()
        assert index["degraded"][0]["trace_id"] == "d" * 16
        assert index["faulted"][0]["trace_id"] == "f" * 16
        assert index["recorded"] == 2

    def test_clear_empties_every_view(self):
        recorder = FlightRecorder()
        recorder.record(_entry("a" * 16))
        recorder.clear()
        assert recorder.lookup("a" * 16) is None
        assert recorder.index()["recorded"] == 0


class TestSLOTracker:
    def test_throttles_do_not_burn_availability_by_default(self):
        tracker = SLOTracker(SLOTargets(availability=0.9))
        for _ in range(8):
            tracker.record(200, 5.0)
        tracker.record(429, 0.1, throttled=True)
        tracker.record(503, 0.1, throttled=True)
        report = tracker.report()
        assert report["requests"] == 10
        assert report["throttled"] == 2
        assert report["availability"] == 1.0
        assert report["availability_met"]
        assert report["error_budget_burned"] == 0.0

    def test_strict_mode_counts_throttles(self):
        tracker = SLOTracker(SLOTargets(availability=0.9, strict=True))
        tracker.record(200, 5.0)
        tracker.record(429, 0.1, throttled=True)
        report = tracker.report()
        assert report["availability"] == 0.5
        assert not report["availability_met"]

    def test_5xx_burns_error_budget(self):
        tracker = SLOTracker(SLOTargets(availability=0.999))
        for _ in range(9):
            tracker.record(200, 5.0)
        tracker.record(500, 5.0)
        report = tracker.report()
        assert report["unavailable"] == 1
        assert report["availability"] == 0.9
        assert report["error_budget_burned"] == 1.0  # capped

    def test_throttled_latency_excluded_from_percentiles(self):
        tracker = SLOTracker()
        tracker.record(200, 40.0)
        tracker.record(429, 0.01, throttled=True)
        report = tracker.report()
        assert report["p50_ms"] > 1.0  # the 0.01ms refusal is ignored

    def test_degraded_tallied_but_available(self):
        tracker = SLOTracker()
        tracker.record(200, 5.0, degraded=True)
        report = tracker.report()
        assert report["degraded"] == 1
        assert report["availability"] == 1.0

    def test_clear_resets_window(self):
        tracker = SLOTracker()
        tracker.record(500, 5.0)
        tracker.clear()
        assert tracker.report()["requests"] == 0


class TestJsonlLogger:
    def test_appends_stamped_records(self, tmp_path):
        logger = JsonlLogger(tmp_path / "access.jsonl")
        logger.log({"path": "/allocate", "status": 200})
        logger.log({"path": "/metrics", "status": 200})
        lines = (tmp_path / "access.jsonl").read_text().splitlines()
        assert len(lines) == 2
        record = json.loads(lines[0])
        assert record["path"] == "/allocate"
        assert record["pid"] == os.getpid()
        assert record["ts"] <= time.time()

    def test_rotation_bounds_disk_use(self, tmp_path):
        path = tmp_path / "access.jsonl"
        logger = JsonlLogger(path, max_bytes=200, backups=2)
        for index in range(40):
            logger.log({"n": index, "pad": "x" * 40})
        assert logger.rotations > 0
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["access.jsonl", "access.jsonl.1", "access.jsonl.2"]
        for p in tmp_path.iterdir():
            assert p.stat().st_size <= 200 + 120  # one record of slack

    def test_open_access_log_none_when_disabled(self, tmp_path):
        assert open_access_log(None) is None
        assert open_access_log("") is None
        logger = open_access_log(str(tmp_path / "a.jsonl"), max_bytes=100)
        assert logger is not None and logger.max_bytes == 100


class TestBucketedData:
    def test_observe_and_quantile(self):
        data = BucketedData()
        for value in (1.5, 3.0, 7.0, 40.0, 900.0):
            data = data.observe(value)
        assert data.count == 5
        assert data.quantile(0.0) <= data.quantile(0.5) <= data.quantile(1.0)
        assert data.quantile(1.0) <= data.maximum

    def test_merge_adds_bucket_counts(self):
        a = BucketedData().observe(1.0).observe(100.0)
        b = BucketedData().observe(1.0)
        merged = a.merge(b)
        assert merged.count == 3
        assert sum(merged.buckets) == 3
        assert merged.maximum == 100.0

    def test_overflow_bucket_catches_huge_values(self):
        data = BucketedData().observe(LATENCY_BUCKETS_MS[-1] * 10)
        assert data.buckets[-1] == 1


class TestPrometheusRendering:
    def test_counters_gauges_and_labeled_histograms(self):
        registry = MetricsRegistry()
        registry.inc("serve.requests", 3)
        registry.set_gauge("serve.queue_depth", 2)
        registry.observe("regalloc.iterations", 2.0)
        registry.observe_labeled(
            "serve.request_ms", 4.0,
            {"preset": "improved", "outcome": "ok"},
        )
        registry.observe_labeled(
            "serve.request_ms", 80.0,
            {"preset": "improved", "outcome": "ok"},
        )
        text = render_prometheus(registry)
        assert text.endswith("\n")
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 3" in text
        assert "repro_serve_queue_depth 2" in text
        assert "repro_regalloc_iterations_count 1" in text
        assert "# TYPE repro_serve_request_ms histogram" in text
        assert (
            'repro_serve_request_ms_bucket{outcome="ok",preset="improved",'
            'le="5"} 1' in text
        )
        assert (
            'repro_serve_request_ms_bucket{outcome="ok",preset="improved",'
            'le="+Inf"} 2' in text
        )
        assert (
            'repro_serve_request_ms_count{outcome="ok",preset="improved"} 2'
            in text
        )

    def test_bucket_series_is_cumulative(self):
        registry = MetricsRegistry()
        for value in (1.0, 4.0, 40.0):
            registry.observe_labeled("serve.request_ms", value, {"k": "v"})
        counts = []
        for line in render_prometheus(registry).splitlines():
            if line.startswith("repro_serve_request_ms_bucket"):
                counts.append(int(line.rsplit(" ", 1)[1]))
        assert counts == sorted(counts)
        assert counts[-1] == 3

    def test_slo_rendering(self):
        tracker = SLOTracker()
        tracker.record(200, 5.0)
        text = render_slo_prometheus(tracker.report())
        assert "repro_slo_availability 1" in text
        assert "repro_slo_availability_met 1" in text
        assert "repro_slo_requests 1" in text


class TestChromeExport:
    def _spans(self):
        base = 1.7e9
        return [
            {"trace_id": "t" * 16, "span_id": "a", "name": "ingress",
             "start": base, "duration_ms": 10.0, "pid": 100},
            {"trace_id": "t" * 16, "span_id": "b", "name": "worker-exec",
             "start": base + 0.002, "duration_ms": 5.0, "pid": 200,
             "parent_id": "a", "attrs": {"preset": "improved"}},
        ]

    def test_timestamps_rebased_to_earliest_span(self):
        events = request_trace_events(self._spans())
        complete = [e for e in events if e["ph"] == "X"]
        assert complete[0]["ts"] == 0.0
        assert abs(complete[1]["ts"] - 2000.0) < 1.0  # 2ms later, in µs

    def test_durations_come_from_duration_ms(self):
        complete = [
            e for e in request_trace_events(self._spans()) if e["ph"] == "X"
        ]
        assert complete[0]["dur"] == 10000.0  # 10ms in µs
        assert complete[1]["dur"] == 5000.0

    def test_each_pid_gets_a_process_track(self):
        events = request_trace_events(self._spans())
        names = [
            e["args"]["name"] for e in events if e["name"] == "process_name"
        ]
        assert names == ["pid 100", "pid 200"]

    def test_full_document_carries_trace_id(self):
        document = request_chrome_trace("t" * 16, self._spans())
        assert document["otherData"]["trace_id"] == "t" * 16
        assert document["displayTimeUnit"] == "ms"
        assert document["traceEvents"]

    def test_span_args_carry_identity_and_attrs(self):
        complete = [
            e for e in request_trace_events(self._spans()) if e["ph"] == "X"
        ]
        assert complete[1]["args"]["span_id"] == "b"
        assert complete[1]["args"]["parent_id"] == "a"
        assert complete[1]["args"]["preset"] == "improved"

    def test_phase_span_export_is_rebased_too(self):
        spans = [
            PhaseSpan(name="build", function="main", iteration=1,
                      start=1.7e9, duration=0.001, pid=1),
            PhaseSpan(name="assign", function="main", iteration=1,
                      start=1.7e9 + 0.5, duration=0.001, pid=2),
        ]
        assert trace_epoch_base(spans) == 1.7e9
        from repro.obs import chrome_trace_events

        complete = [
            e for e in chrome_trace_events(spans) if e["ph"] == "X"
        ]
        assert complete[0]["ts"] == 0.0
        assert abs(complete[1]["ts"] - 5e5) < 1.0
        # Opting out keeps absolute epoch timestamps.
        absolute = [
            e for e in chrome_trace_events(spans, base=0.0) if e["ph"] == "X"
        ]
        assert absolute[0]["ts"] == 1.7e9 * 1e6
