"""Regenerate the golden decision traces.

Run after an *intentional* change to the allocator's decision order::

    PYTHONPATH=src python tests/obs/regen_golden.py

then review the diff — every changed line is a changed allocator
decision and should be explainable by the change you made.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from test_tracer import GOLDEN_DIR, GOLDEN_PRESETS, _trace  # noqa: E402


def main() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for preset in GOLDEN_PRESETS:
        tracer = _trace(preset)
        path = GOLDEN_DIR / f"trace_{preset}.jsonl"
        tracer.write_jsonl(path)
        print(f"{path}: {len(tracer.events)} event(s)")


if __name__ == "__main__":
    main()
