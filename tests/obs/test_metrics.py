"""Metrics registry and per-allocation metric derivation tests."""

import pickle

from repro.lang import compile_source
from repro.machine import RegisterConfig, register_file
from repro.obs import MetricsRegistry, allocation_metrics
from repro.obs.metrics import HistogramData, MetricsSnapshot
from repro.regalloc import PRESETS, allocate_program
from repro.regalloc.spillinstr import OverheadKind, SpillLoad, SpillStore

SOURCE = """
int out[4];
int helper(int x) { return x * 3 + 1; }
void main() {
    int total = 0;
    int i = 0;
    while (i < 20) {
        total = total + helper(i);
        i = i + 1;
    }
    out[0] = total;
}
"""


def _allocate():
    program = compile_source(SOURCE)
    return allocate_program(
        program, register_file(RegisterConfig(4, 3, 1, 1)), PRESETS["improved"]()
    )


class TestRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.inc("a.b")
        reg.inc("a.b", 2.5)
        assert reg.counter("a.b") == 3.5
        assert reg.counter("missing") == 0.0

    def test_gauges_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 1.0)
        reg.set_gauge("g", 7.0)
        assert reg.gauge("g") == 7.0
        assert reg.gauge("missing") is None

    def test_histograms_summarize(self):
        reg = MetricsRegistry()
        for value in (1, 2, 3):
            reg.observe("h", value)
        data = reg.histogram("h")
        assert data.count == 3
        assert data.minimum == 1 and data.maximum == 3
        assert data.mean == 2.0

    def test_as_dict_is_sorted_and_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.inc("z.last")
        reg.inc("a.first")
        reg.observe("h", 4)
        rendered = reg.as_dict()
        assert list(rendered["counters"]) == ["a.first", "z.last"]
        json.dumps(rendered)

    def test_clear(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.set_gauge("g", 1)
        reg.observe("h", 1)
        reg.observe_labeled("l", 1.0, {"k": "v"})
        reg.clear()
        assert reg.as_dict() == {
            "counters": {}, "gauges": {}, "histograms": {}, "labeled": {}
        }

    def test_labeled_histograms_keep_one_series_per_label_set(self):
        reg = MetricsRegistry()
        reg.observe_labeled("serve.request_ms", 4.0, {"a": "1", "b": "2"})
        # Same labels, different dict order: must land in the same series.
        reg.observe_labeled("serve.request_ms", 8.0, {"b": "2", "a": "1"})
        reg.observe_labeled("serve.request_ms", 4.0, {"a": "1", "b": "3"})
        series = reg.labeled("serve.request_ms")
        assert len(series) == 2
        key = (("a", "1"), ("b", "2"))
        assert series[key].count == 2
        assert reg.labeled_names() == ("serve.request_ms",)
        rendered = reg.as_dict()["labeled"]["serve.request_ms"]
        assert 'a="1",b="2"' in "".join(rendered)

    def test_rearm_after_fork_resets_labeled_state_too(self):
        """The fork-safety reset must cover every store — a worker that
        inherited the parent's labeled latency histograms would
        double-report the parent's distribution on its first snapshot."""
        reg = MetricsRegistry()
        reg.inc("c", 5)
        reg.observe("h", 1.0)
        reg.observe_labeled("serve.request_ms", 4.0, {"preset": "base"})
        old_lock = reg._lock
        reg.rearm_after_fork()
        assert reg._lock is not old_lock  # fresh, never-held lock
        assert reg.counter("c") == 0.0
        assert reg.histogram("h").count == 0
        assert reg.labeled("serve.request_ms") == {}
        assert reg.labeled_names() == ()


class TestSnapshotMerge:
    def test_merge_adds_counters_and_combines_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 2)
        b.inc("c", 3)
        a.observe("h", 1)
        b.observe("h", 9)
        a.merge(b.snapshot())
        assert a.counter("c") == 5
        data = a.histogram("h")
        assert data.count == 2 and data.minimum == 1 and data.maximum == 9

    def test_merge_order_independent_for_counters(self):
        parts = []
        for value in (1, 4, 7):
            reg = MetricsRegistry()
            reg.inc("c", value)
            reg.observe("h", value)
            parts.append(reg.snapshot())
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snap in parts:
            forward.merge(snap)
        for snap in reversed(parts):
            backward.merge(snap)
        assert forward.as_dict() == backward.as_dict()

    def test_snapshot_is_picklable(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.observe("h", 3)
        snap = pickle.loads(pickle.dumps(reg.snapshot()))
        assert snap.counters["c"] == 2
        assert snap.histograms["h"].count == 1

    def test_empty_flag(self):
        assert MetricsSnapshot().empty
        assert not MetricsSnapshot(counters={"a": 1.0}).empty

    def test_empty_histogram_merge(self):
        assert HistogramData().merge(HistogramData()).count == 0


class TestAllocationMetrics:
    def test_counts_match_the_allocation(self):
        allocation = _allocate()
        snap = allocation_metrics(allocation)
        functions = allocation.functions.values()
        assert snap.counters["regalloc.spilled_ranges"] == sum(
            len(fa.spilled) for fa in functions
        )
        assert snap.counters["regalloc.frame_slots"] == sum(
            fa.frame_slots for fa in functions
        )
        assert snap.histograms["regalloc.iterations"].count == len(
            allocation.functions
        )

    def test_overhead_ops_counted_from_final_code(self):
        allocation = _allocate()
        snap = allocation_metrics(allocation)
        loads = stores = caller = callee = 0
        for fa in allocation.functions.values():
            for instr in fa.func.instructions():
                if isinstance(instr, SpillLoad):
                    if instr.kind is OverheadKind.SPILL:
                        loads += 1
                    elif instr.kind is OverheadKind.CALLER_SAVE:
                        caller += 1
                    else:
                        callee += 1
                elif isinstance(instr, SpillStore):
                    if instr.kind is OverheadKind.SPILL:
                        stores += 1
                    elif instr.kind is OverheadKind.CALLER_SAVE:
                        caller += 1
                    else:
                        callee += 1
        assert snap.counters["regalloc.spill_loads"] == loads
        assert snap.counters["regalloc.spill_stores"] == stores
        assert snap.counters["regalloc.caller_save_ops"] == caller
        assert snap.counters["regalloc.callee_save_ops"] == callee

    def test_derivation_does_not_touch_global_registry(self):
        from repro.obs import METRICS

        before = METRICS.as_dict()
        allocation_metrics(_allocate())
        assert METRICS.as_dict() == before


class TestMeasurementIntegration:
    def test_measurements_carry_metrics_and_run_grid_merges(self):
        from repro.eval.runner import ResultCache, run_grid
        from repro.obs import METRICS

        cache = ResultCache()
        key = (
            "compress",
            PRESETS["base"](),
            RegisterConfig(6, 4, 2, 2),
            "dynamic",
        )
        before = METRICS.counter("grid.computed")
        report = run_grid([key], cache=cache)
        assert report.ok
        measurement = cache.peek(key)
        assert not measurement.metrics.empty
        assert METRICS.counter("grid.computed") == before + 1

    def test_traced_measurement_carries_spans(self):
        from repro.eval.runner import compute_measurement

        key = (
            "compress",
            PRESETS["base"](),
            RegisterConfig(6, 4, 2, 2),
            "dynamic",
        )
        traced = compute_measurement(*key, trace=True)
        untraced = compute_measurement(*key)
        assert traced.spans and not untraced.spans
        assert traced.overhead == untraced.overhead
        assert traced.cycles == untraced.cycles
