"""Tracer tests: golden decision traces, bit-identity, exporters."""

import json
from pathlib import Path

import pytest

from repro.lang import compile_source
from repro.machine import RegisterConfig, register_file
from repro.obs import (
    NullTracer,
    Tracer,
    chrome_trace_events,
    render_decision_log,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.regalloc import PRESETS, allocate_program

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Deliberately busy: a call-crossing accumulator (the storage-class
#: showcase), a helper with plenty of temporaries, and few registers,
#: so the trace exercises coalescing, preference decisions, benefit
#: ranking and spill-code placement.
SOURCE = """
int out[4];
int helper(int x) { return x * 3 + 1; }
void main() {
    int total = 0;
    int i = 0;
    while (i < 20) {
        total = total + helper(i);
        i = i + 1;
    }
    out[0] = total;
}
"""

CONFIG = RegisterConfig(4, 3, 1, 1)

#: The two presets the golden traces pin down (satellite: stable
#: ordered decision trace under two allocator presets).
GOLDEN_PRESETS = ("base", "improved")


def _trace(preset: str) -> Tracer:
    program = compile_source(SOURCE)
    tracer = Tracer()
    allocate_program(
        program, register_file(CONFIG), PRESETS[preset](), tracer=tracer
    )
    return tracer


@pytest.mark.parametrize("preset", GOLDEN_PRESETS)
def test_golden_decision_trace(preset, tmp_path):
    """The decision trace is stable, ordered and matches the golden.

    Static weights, fixed source, fixed register file: every event —
    its kind, sequence number, live range and payload — must come out
    byte-identical run over run.  A diff here means the allocator's
    decision *order* changed, which is exactly what this test exists
    to catch (regenerate with tests/obs/regen_golden.py if the change
    is intentional).
    """
    tracer = _trace(preset)
    out = tmp_path / f"{preset}.jsonl"
    count = tracer.write_jsonl(out)
    assert count == len(tracer.events) > 0
    golden = (GOLDEN_DIR / f"trace_{preset}.jsonl").read_text()
    assert out.read_text() == golden


def test_trace_is_deterministic():
    a = [e.to_json() for e in _trace("improved").events]
    b = [e.to_json() for e in _trace("improved").events]
    assert a == b


def test_event_sequence_is_ordered():
    events = _trace("improved").events
    assert [e.seq for e in events] == list(range(len(events)))


def _allocation_fingerprint(tracer):
    program = compile_source(SOURCE)
    allocation = allocate_program(
        program, register_file(CONFIG), PRESETS["improved"](), tracer=tracer
    )
    return {
        name: (
            sorted((repr(r), p.name) for r, p in fa.assignment.items()),
            sorted(repr(r) for r in fa.spilled),
            fa.frame_slots,
            fa.iterations,
        )
        for name, fa in allocation.functions.items()
    }


def test_tracing_does_not_change_the_allocation():
    """Bit-identity: tracer=None, a recording Tracer and a NullTracer
    produce exactly the same assignments, spills and frame layout."""
    untraced = _allocation_fingerprint(None)
    traced = _allocation_fingerprint(Tracer())
    null = _allocation_fingerprint(NullTracer())
    assert untraced == traced == null


def test_null_tracer_records_nothing():
    tracer = NullTracer()
    _allocation_fingerprint(tracer)
    assert tracer.events == []
    assert tracer.spans == []


def test_span_only_tracer():
    program = compile_source(SOURCE)
    tracer = Tracer(record_events=False)
    allocate_program(
        program, register_file(CONFIG), PRESETS["improved"](), tracer=tracer
    )
    assert tracer.events == []
    assert tracer.spans
    names = {span.name for span in tracer.spans}
    assert "build" in names and "assign" in names
    assert all(span.duration >= 0.0 for span in tracer.spans)
    assert all(span.pid > 0 for span in tracer.spans)


def test_events_stamped_with_context():
    tracer = _trace("improved")
    functions = tracer.functions()
    assert functions == ["helper", "main"]
    for event in tracer.events:
        assert event.function in functions
        assert event.iteration >= 0
    kinds = {event.kind for event in tracer.events}
    assert "benefits" in kinds
    assert "simplify_pop" in kinds
    assert "assign" in kinds


def test_jsonl_roundtrip(tmp_path):
    tracer = _trace("base")
    path = tmp_path / "events.jsonl"
    write_events_jsonl(path, tracer.events)
    lines = path.read_text().splitlines()
    assert len(lines) == len(tracer.events)
    for line, event in zip(lines, tracer.events):
        record = json.loads(line)
        assert record["kind"] == event.kind
        assert record["seq"] == event.seq


def test_chrome_trace_export(tmp_path):
    tracer = _trace("improved")
    path = tmp_path / "trace.json"
    write_chrome_trace(path, tracer.spans)
    payload = json.loads(path.read_text())
    events = payload["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    metadata = [e for e in events if e["ph"] == "M"]
    assert len(complete) == len(tracer.spans)
    assert any(e["name"] == "process_name" for e in metadata)
    assert any(e["name"] == "thread_name" for e in metadata)
    for event in complete:
        assert event["dur"] >= 0
        assert event["name"] in {
            "build", "coalesce", "order", "assign", "spill_insert", "emit"
        }


def test_chrome_trace_separates_processes():
    spans = _trace("improved").spans
    fake = [
        type(span)(
            name=span.name,
            function=span.function,
            iteration=span.iteration,
            start=span.start,
            duration=span.duration,
            pid=span.pid + 1,
        )
        for span in spans
    ]
    events = chrome_trace_events(spans + fake)
    pids = {e["pid"] for e in events if e["ph"] == "X"}
    assert len(pids) == 2


def test_decision_log_is_human_readable():
    tracer = _trace("improved")
    text = render_decision_log(tracer.events)
    assert "== function main ==" in text
    assert "benefit_caller" in text
    assert "popped by simplification" in text


def test_infinite_costs_stay_json_loadable():
    tracer = Tracer()
    tracer.emit("benefits", None, spill_cost=float("inf"))
    json.loads(tracer.events[0].to_json())
