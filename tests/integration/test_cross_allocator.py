"""Cross-allocator invariants over the workloads.

Relationships that must hold between the allocators regardless of the
program — the sanity net under the experiment numbers.
"""

import pytest

from repro.eval import measure
from repro.machine import RegisterConfig
from repro.regalloc import AllocatorOptions
from repro.workloads import workload_names

CONFIGS = [RegisterConfig(6, 4, 0, 0), RegisterConfig(9, 7, 3, 3)]


@pytest.mark.parametrize("name", sorted(workload_names()))
@pytest.mark.parametrize("config", CONFIGS, ids=str)
class TestOrderings:
    def test_improved_never_loses_badly_to_base(self, name, config):
        # SC can trade spills for call cost using *estimates*, so tiny
        # regressions are possible; order-of-magnitude losses are not.
        base = measure(name, AllocatorOptions.base_chaitin(), config)
        improved = measure(name, AllocatorOptions.improved_chaitin(), config)
        assert improved.total <= base.total * 1.10

    def test_overheads_are_finite_and_nonnegative(self, name, config):
        for factory in (
            AllocatorOptions.base_chaitin,
            AllocatorOptions.optimistic_coloring,
            AllocatorOptions.improved_chaitin,
            AllocatorOptions.priority_based,
            AllocatorOptions.cbh,
        ):
            overhead = measure(name, factory(), config)
            for component in (
                overhead.spill,
                overhead.caller_save,
                overhead.callee_save,
                overhead.shuffle,
            ):
                assert component >= 0.0
                assert component < float("inf")


@pytest.mark.parametrize("name", ["eqntott", "ear", "sc", "tomcatv"])
class TestFullFileBehaviour:
    def test_base_model_never_spills_at_full_file(self, name):
        # The full MIPS file fits every workload function, so the base
        # model (which spills only under pressure) emits no spill code.
        # Improved Chaitin is *allowed* to spill here: storage-class
        # analysis spills a range when both register kinds cost more
        # than memory — the paper's central point.
        from repro.machine import FULL_CONFIG

        overhead = measure(
            name, AllocatorOptions.base_chaitin(), FULL_CONFIG
        )
        assert overhead.spill == 0.0

    def test_improved_spills_only_when_profitable(self, name):
        # Any spill the improved allocator keeps at the full file must
        # pay for itself: total overhead never exceeds the base model's.
        from repro.machine import FULL_CONFIG

        base = measure(name, AllocatorOptions.base_chaitin(), FULL_CONFIG)
        improved = measure(
            name, AllocatorOptions.improved_chaitin(), FULL_CONFIG
        )
        assert improved.total <= base.total

    def test_callee_save_cost_bounded_by_entries(self, name):
        # Each used callee-save register costs at most
        # 2 * entries(function) per function; the total must not exceed
        # registers * that bound.
        from repro.machine import FULL_CONFIG
        from repro.workloads import compile_workload

        compiled = compile_workload(name)
        overhead = measure(
            name, AllocatorOptions.improved_chaitin(), FULL_CONFIG
        )
        total_entries = sum(
            compiled.profile.entries(f) for f in compiled.program.functions
        )
        bound = 2.0 * total_entries * FULL_CONFIG.total
        assert overhead.callee_save <= bound


class TestInfoSourceConsistency:
    @pytest.mark.parametrize("name", ["tomcatv", "fpppp", "matrix300"])
    def test_regular_programs_info_invariant(self, name):
        # Programs whose heat is purely loop-structural allocate the
        # same under static and dynamic information.
        config = RegisterConfig(8, 6, 2, 2)
        static = measure(name, AllocatorOptions.improved_chaitin(), config, "static")
        dynamic = measure(name, AllocatorOptions.improved_chaitin(), config, "dynamic")
        assert static.total == dynamic.total
