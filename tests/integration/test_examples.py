"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must print something"


def test_at_least_three_examples_exist():
    assert len(EXAMPLES) >= 3
