"""A battery of classic algorithms through the whole pipeline.

Each program is executed at IR level (checking the expected answer,
i.e. the frontend/interpreter semantics) and then allocated under a
tight register file and re-executed at machine level (checking the
allocator).  These shapes — recursion, mutual recursion, sorting,
number theory, fixed-point float iteration — exercise control-flow
and live-range patterns the SPEC stand-ins don't.
"""

import pytest

from repro.lang import compile_source
from repro.machine import RegisterConfig, register_file
from repro.profile import run_allocated, run_program
from repro.regalloc import AllocatorOptions, allocate_program
from tests.conftest import assert_same_globals

GCD = (
    """
    int out[1];
    int gcd(int a, int b) {
        while (b != 0) {
            int t = b;
            b = a % b;
            a = t;
        }
        return a;
    }
    void main() { out[0] = gcd(1071, 462); }
    """,
    "out",
    [21],
)

SIEVE = (
    """
    int sieve[100];
    int out[2];
    void main() {
        int count = 0;
        for (int i = 2; i < 100; i = i + 1) {
            if (sieve[i] == 0) {
                count = count + 1;
                for (int j = i + i; j < 100; j = j + i) {
                    sieve[j] = 1;
                }
            }
        }
        out[0] = count;
        out[1] = sieve[91];
    }
    """,
    "out",
    [25, 1],  # 25 primes below 100; 91 = 7*13 composite
)

QUICKSORT = (
    """
    int data[32];
    int out[2];
    void qsort_range(int lo, int hi) {
        if (lo >= hi) { return; }
        int pivot = data[hi];
        int store = lo;
        for (int i = lo; i < hi; i = i + 1) {
            if (data[i] < pivot) {
                int tmp = data[i];
                data[i] = data[store];
                data[store] = tmp;
                store = store + 1;
            }
        }
        int tmp2 = data[hi];
        data[hi] = data[store];
        data[store] = tmp2;
        qsort_range(lo, store - 1);
        qsort_range(store + 1, hi);
    }
    void main() {
        int seed = 12;
        for (int i = 0; i < 32; i = i + 1) {
            seed = (seed * 1103 + 12345) % 100000;
            data[i] = seed % 1000;
        }
        qsort_range(0, 31);
        int sorted = 1;
        for (int i = 1; i < 32; i = i + 1) {
            if (data[i - 1] > data[i]) { sorted = 0; }
        }
        out[0] = sorted;
        out[1] = data[0];
    }
    """,
    "out",
    [1, None],  # sorted; smallest element checked dynamically
)

ACKERMANN = (
    """
    int out[1];
    int ack(int m, int n) {
        if (m == 0) { return n + 1; }
        if (n == 0) { return ack(m - 1, 1); }
        return ack(m - 1, ack(m, n - 1));
    }
    void main() { out[0] = ack(2, 3); }
    """,
    "out",
    [9],
)

COLLATZ = (
    """
    int out[2];
    int steps(int n) {
        int count = 0;
        while (n != 1) {
            if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
            count = count + 1;
        }
        return count;
    }
    void main() {
        int longest = 0;
        int argmax = 1;
        for (int n = 1; n <= 60; n = n + 1) {
            int s = steps(n);
            if (s > longest) { longest = s; argmax = n; }
        }
        out[0] = longest;
        out[1] = argmax;
    }
    """,
    "out",
    [112, 54],  # 54 has the longest chain (112 steps) up to 60
)

NEWTON_SQRT = (
    """
    float fout[2];
    float newton_sqrt(float x) {
        float guess = x * 0.5 + 0.5;
        for (int i = 0; i < 20; i = i + 1) {
            guess = (guess + x / guess) * 0.5;
        }
        return guess;
    }
    void main() {
        fout[0] = newton_sqrt(2.0);
        fout[1] = newton_sqrt(144.0);
    }
    """,
    "fout",
    [1.4142135623730951, 12.0],
)

BATTERY = {
    "gcd": GCD,
    "sieve": SIEVE,
    "quicksort": QUICKSORT,
    "ackermann": ACKERMANN,
    "collatz": COLLATZ,
    "newton_sqrt": NEWTON_SQRT,
}

TIGHT = RegisterConfig(4, 3, 1, 1)


@pytest.mark.parametrize("name", sorted(BATTERY))
def test_semantics(name):
    source, array, expected = BATTERY[name]
    program = compile_source(source)
    state = run_program(program).globals_state
    for i, want in enumerate(expected):
        if want is None:
            continue
        if isinstance(want, float):
            assert state[array][i] == pytest.approx(want)
        else:
            assert state[array][i] == want


@pytest.mark.parametrize("name", sorted(BATTERY))
@pytest.mark.parametrize(
    "options",
    [
        AllocatorOptions.base_chaitin(),
        AllocatorOptions.improved_chaitin(),
        AllocatorOptions.cbh(),
    ],
    ids=lambda o: o.label,
)
def test_allocated_equivalence(name, options):
    source, _, _ = BATTERY[name]
    program = compile_source(source)
    base = run_program(program)
    allocation = allocate_program(program, register_file(TIGHT), options)
    mech = run_allocated(allocation)
    assert_same_globals(base.globals_state, mech.globals_state)
