"""THE oracle: allocated code must compute what the source computes.

Every workload is allocated under every allocator at several register
configurations (and both information sources), executed on the
machine-level interpreter, and compared against the IR-level
execution.  The analytic overhead is simultaneously cross-checked
against the executed overhead-operation counts.
"""

import pytest

from repro.eval import program_overhead
from repro.machine import RegisterConfig, register_file
from repro.profile import run_allocated
from repro.regalloc import AllocatorOptions, allocate_program
from repro.regalloc.spillinstr import OverheadKind
from repro.workloads import compile_workload, workload_names
from tests.conftest import assert_same_globals

ALLOCATORS = {
    "base": AllocatorOptions.base_chaitin(),
    "optimistic": AllocatorOptions.optimistic_coloring(),
    "improved": AllocatorOptions.improved_chaitin(),
    "improved_optimistic": AllocatorOptions.improved_optimistic(),
    "priority": AllocatorOptions.priority_based(),
    "cbh": AllocatorOptions.cbh(),
}

CONFIGS = [
    RegisterConfig(6, 4, 0, 0),  # convention minimum, no callee-save
    RegisterConfig(8, 6, 2, 2),  # mid sweep
    RegisterConfig(17, 10, 9, 6),  # full file
]


def check_one(name: str, options: AllocatorOptions, config: RegisterConfig,
              info: str = "dynamic") -> None:
    compiled = compile_workload(name)
    weights_for = (
        compiled.dynamic_weights if info == "dynamic" else compiled.static_weights
    )
    allocation = allocate_program(
        compiled.program, register_file(config), options, weights_for
    )
    mech = run_allocated(allocation)
    assert_same_globals(compiled.baseline.globals_state, mech.globals_state)
    analytic = program_overhead(allocation, compiled.profile)
    assert analytic.spill == mech.overhead_counts[OverheadKind.SPILL]
    assert analytic.caller_save == mech.overhead_counts[OverheadKind.CALLER_SAVE]
    assert analytic.callee_save == mech.overhead_counts[OverheadKind.CALLEE_SAVE]
    assert analytic.shuffle == mech.shuffle_count


@pytest.mark.parametrize("name", sorted(workload_names()))
@pytest.mark.parametrize("allocator", sorted(ALLOCATORS))
def test_equivalence_mid_config(name, allocator):
    check_one(name, ALLOCATORS[allocator], CONFIGS[1])


@pytest.mark.parametrize("name", sorted(workload_names()))
def test_equivalence_no_callee_save(name):
    check_one(name, ALLOCATORS["improved"], CONFIGS[0])


@pytest.mark.parametrize("name", sorted(workload_names()))
def test_equivalence_full_file(name):
    check_one(name, ALLOCATORS["base"], CONFIGS[2])


@pytest.mark.parametrize("allocator", sorted(ALLOCATORS))
def test_equivalence_static_info(allocator):
    check_one("compress", ALLOCATORS[allocator], CONFIGS[1], info="static")


@pytest.mark.parametrize(
    "name", ["fpppp", "li", "ear"]
)  # pressure, recursion, hot float calls
def test_equivalence_tiny_file(name):
    check_one(name, ALLOCATORS["base"], RegisterConfig(4, 3, 1, 1))
