"""Shape assertions for the paper's headline claims.

Absolute factors differ from the paper (its substrate was the cmcc
compiler and SPEC92 on MIPS; ours is a mini-C compiler and synthetic
stand-ins), but each test pins down the *shape* the paper reports:
who wins, roughly by how much, and where the crossovers fall.
These run on the full canonical sweep, so they are the slowest tests
in the suite.
"""

import pytest

from repro.eval import (
    figure2,
    figure6,
    figure9,
    figure10,
    figure11,
    measure,
    overhead_ratio,
    table2,
    table3,
    table4,
)
from repro.machine import FULL_CONFIG, mips_sweep
from repro.regalloc import AllocatorOptions

SWEEP = mips_sweep()


class TestFigure2Claims:
    """Section 3.2: spill cost vanishes, call cost dominates."""

    @pytest.mark.parametrize("program", ["eqntott", "ear"])
    def test_spill_cost_collapses_with_registers(self, program):
        result = figure2(programs=(program,), configs=SWEEP)
        overheads = result.overheads[program]
        assert overheads[-1].spill <= overheads[0].spill * 0.05 + 1.0

    @pytest.mark.parametrize("program", ["eqntott", "ear"])
    def test_call_cost_dominates_at_scale(self, program):
        result = figure2(programs=(program,), configs=SWEEP)
        late = result.overheads[program][5]
        assert late.call_cost > late.spill

    def test_call_cost_is_significant_fraction(self):
        # "the contribution of the call cost to total register
        # allocation cost is significant"
        result = figure2(programs=("ear",), configs=SWEEP[:1])
        first = result.overheads["ear"][0]
        assert first.call_cost > 0.25 * first.total


class TestFigure6Claims:
    """Section 7: the four program classes."""

    def test_eqntott_headline_factor(self):
        # Paper: factor 66 for eqntott.  We assert a large factor.
        result = figure6(programs=("eqntott",), configs=SWEEP)
        ratios = result.values("eqntott", "SC+BS+PR")
        assert max(ratios) > 10.0

    def test_ear_improvement_grows_with_registers(self):
        result = figure6(programs=("ear",), configs=SWEEP)
        ratios = result.values("ear", "SC+BS+PR")
        assert ratios[-1] > ratios[0]
        assert max(ratios) > 5.0

    def test_li_class_sc_alone_suffices(self):
        # Class 2: only storage-class analysis matters for li/sc.
        result = figure6(programs=("li",), configs=SWEEP)
        sc_only = result.values("li", "SC")
        full = result.values("li", "SC+BS+PR")
        assert sc_only == full
        assert max(sc_only) > 1.2

    def test_tomcatv_unaffected(self):
        # Class 4: no calls, every ratio is exactly 1.0.
        result = figure6(programs=("tomcatv",), configs=SWEEP)
        for (_, label), ratios in result.series.items():
            assert all(r == 1.0 for r in ratios), label

    def test_improvements_rarely_hurt_with_profiles(self):
        result = figure6(
            programs=("eqntott", "ear", "li", "sc", "espresso"), configs=SWEEP
        )
        for (_prog, _label), ratios in result.series.items():
            for r in ratios:
                assert r >= 0.95


class TestOptimisticClaims:
    """Section 8: optimistic coloring is a small, two-sided effect."""

    def test_mostly_near_one(self):
        result = table3(
            programs=("gcc", "li", "espresso", "compress"), configs=SWEEP
        )
        near_one = 0
        total = 0
        for (_, _), ratios in result.series.items():
            for r in ratios:
                total += 1
                if 0.9 <= r <= 1.1:
                    near_one += 1
        assert near_one >= total * 0.6

    def test_optimistic_helps_fpppp_under_pressure(self):
        # Figure 9: the pressure-bound program is where optimistic wins.
        result = figure9(program="fpppp", configs=SWEEP)
        optimistic = result.values("fpppp", "optimistic")
        assert max(optimistic) > 1.0

    def test_integration_gets_both_regimes(self):
        result = figure9(program="fpppp", configs=SWEEP)
        combined = result.values("fpppp", "improved+optimistic")
        optimistic = result.values("fpppp", "optimistic")
        improved = result.values("fpppp", "improved")
        for c, o, i in zip(combined, optimistic, improved):
            assert c >= min(o, i) * 0.9


class TestPriorityClaims:
    """Section 9: improved Chaitin vs priority-based coloring."""

    @pytest.mark.parametrize("program", ["nasa7", "ear", "sc"])
    def test_improved_at_least_matches_priority(self, program):
        result = figure10(programs=(program,), configs=SWEEP)
        improved = result.values(program, "improved/dynamic")
        priority = result.values(program, "priority/dynamic")
        # Improved wins or ties at (almost) every point on the sweep.
        wins = sum(i >= p * 0.999 for i, p in zip(improved, priority))
        assert wins >= len(SWEEP) - 1

    def test_priority_can_lose_to_base(self):
        # The paper observes priority-based coloring introducing *more*
        # overhead than base Chaitin in some static configurations.
        result = figure10(programs=("gcc",), configs=SWEEP)
        ratios = result.values("gcc", "priority/static")
        assert min(ratios) < 1.0


class TestCBHClaims:
    """Section 10: CBH over-constrains when callee-saves are scarce."""

    @pytest.mark.parametrize("program", ["li", "matrix300", "ear"])
    def test_cbh_struggles_with_few_callee_saves(self, program):
        result = figure11(programs=(program,), configs=SWEEP)
        improved = result.values(program, "improved/dynamic")
        cbh = result.values(program, "CBH/dynamic")
        # At the convention minimum (no callee-save registers) CBH
        # must not beat improved Chaitin.
        assert cbh[0] <= improved[0]

    def test_cbh_worse_than_base_possible(self):
        # li: hot ranges cross calls; with 0-1 callee-save registers
        # CBH spills them all and loses even to the base model.
        result = figure11(programs=("li",), configs=SWEEP)
        cbh = result.values("li", "CBH/dynamic")
        assert cbh[0] < 1.0

    def test_cbh_catches_up_with_registers(self):
        result = figure11(programs=("matrix300",), configs=SWEEP)
        cbh = result.values("matrix300", "CBH/dynamic")
        assert cbh[-1] >= cbh[0]

    def test_base_model_is_reasonable(self):
        # "the base model is actually reasonable after all": across
        # call-heavy programs, base Chaitin beats CBH somewhere.
        base = AllocatorOptions.base_chaitin()
        cbh = AllocatorOptions.cbh()
        beat = 0
        for program in ("li", "compress", "sc"):
            b = measure(program, base, SWEEP[0], "dynamic")
            c = measure(program, cbh, SWEEP[0], "dynamic")
            if b.total <= c.total:
                beat += 1
        assert beat >= 2


class TestTable4Claims:
    """Section 11: execution-time speedups."""

    def test_speedups_positive_for_winners(self):
        result = table4()
        for program in ("compress", "eqntott", "li", "sc"):
            assert result.speedups[program] > 0.0, program

    def test_spice_unmoved(self):
        result = table4()
        assert abs(result.speedups["spice"]) < 1.0

    def test_full_file_is_used(self):
        assert FULL_CONFIG == SWEEP[-1]


class TestSecondOrderClaims:
    """Shapes beyond the headline numbers."""

    def test_more_registers_can_worsen_base_model(self):
        # Section 3.2: "giving the register allocator more registers
        # may actually worsen the register allocation cost" — live
        # ranges migrate into registers whose call overhead exceeds
        # their spill cost.
        result = figure2(programs=("eqntott",), configs=SWEEP)
        totals = [o.total for o in result.overheads["eqntott"]]
        rises = any(b > a * 1.02 for a, b in zip(totals, totals[1:]))
        assert rises, "expected a non-monotone segment in the base-model curve"

    def test_delta_key_beats_max_key_somewhere(self):
        # Section 5: the max key (priority-style) "increases the
        # register overhead for some SPEC92 programs".
        from repro.eval import ablation_bs_key

        result = ablation_bs_key(programs=("eqntott", "ear"), configs=SWEEP)
        flat = [r for ratios in result.series.values() for r in ratios]
        assert max(flat) > 1.5  # max-key visibly worse somewhere
        assert min(flat) >= 0.95  # delta-key never clearly worse

    def test_shared_callee_model_beats_first_user_somewhere(self):
        # Section 4: "the second approach performs better than the
        # first one for some SPEC92 programs, for others it makes no
        # difference."
        from repro.eval import ablation_callee_model

        result = ablation_callee_model(configs=SWEEP)
        flat = [r for ratios in result.series.values() for r in ratios]
        assert max(flat) > 1.02
        assert min(flat) >= 0.999

    def test_improved_chaitin_keeps_improving_where_cbh_stalls(self):
        # Section 10 (matrix300/nasa7 discussion): CBH needs extra
        # callee-save registers to catch up with improved Chaitin.
        result = figure11(programs=("matrix300",), configs=SWEEP)
        improved = result.values("matrix300", "improved/dynamic")
        cbh = result.values("matrix300", "CBH/dynamic")
        catchup = next(
            (i for i, (a, b) in enumerate(zip(improved, cbh)) if b >= a * 0.999),
            None,
        )
        assert catchup is not None and catchup > 0
