"""The campaign journal: durability discipline under damage.

Every test here attacks the journal file the way a crash or a bad
disk would — truncated tails, flipped bytes, garbage lines, stale
schema versions — and asserts replay degrades to *counted, skipped
records*, never an exception.  That invariant is what lets a resumed
campaign trust whatever survives.
"""

import json

from repro.campaign import JOURNAL_SCHEMA_VERSION, CampaignJournal


def _journal(tmp_path):
    return CampaignJournal(tmp_path / "camp")


def test_append_replay_round_trip(tmp_path):
    journal = _journal(tmp_path)
    journal.append("campaign", {"name": "t", "spec_digest": "d", "points": 2})
    journal.append("shard_start", {"run_id": "r1", "points": ["p1", "p2"]})
    journal.append(
        "point",
        {"point_id": "p1", "run_id": "r1", "status": "computed",
         "overhead": {"spill": 1.0}, "cycles": 10.0},
    )
    journal.append("run_end", {"run_id": "r1", "interrupted": False})
    journal.close()

    state = CampaignJournal(journal.directory).replay()
    assert state.corrupt_records == 0
    assert state.replayed_records == 4
    assert state.header["name"] == "t"
    assert state.points["p1"]["cycles"] == 10.0
    assert state.runs == ["r1"] and state.ended_runs == ["r1"]
    assert not state.dead_runs
    assert state.status_of("p1") == "computed"
    assert state.status_of("p2") is None


def test_missing_journal_replays_empty(tmp_path):
    state = _journal(tmp_path).replay()
    assert state.header is None
    assert state.replayed_records == 0 and state.corrupt_records == 0


def test_truncated_tail_is_counted_not_raised(tmp_path):
    journal = _journal(tmp_path)
    journal.append("campaign", {"name": "t", "spec_digest": "d"})
    journal.append("point", {"point_id": "p1", "status": "computed"})
    journal.close()
    # Chop the last line in half: the classic kill-9-mid-write wound.
    raw = journal.path.read_bytes()
    journal.path.write_bytes(raw[: len(raw) - len(raw.splitlines()[-1]) // 2 - 1])

    state = CampaignJournal(journal.directory).replay()
    assert state.corrupt_records == 1
    assert state.replayed_records == 1
    assert state.header is not None
    assert "p1" not in state.points  # recomputed, not trusted


def test_checksum_mismatch_is_counted_not_raised(tmp_path):
    journal = _journal(tmp_path)
    journal.append("point", {"point_id": "p1", "status": "computed"})
    journal.append("point", {"point_id": "p2", "status": "computed"})
    journal.close()
    lines = journal.path.read_text().splitlines()
    doctored = json.loads(lines[0])
    doctored["payload"]["status"] = "failed"  # bit-flip the payload...
    lines[0] = json.dumps(doctored)  # ...without updating the checksum
    journal.path.write_text("\n".join(lines) + "\n")

    state = CampaignJournal(journal.directory).replay()
    assert state.corrupt_records == 1
    assert state.status_of("p1") is None
    assert state.status_of("p2") == "computed"


def test_garbage_lines_and_wrong_schema_are_counted(tmp_path):
    journal = _journal(tmp_path)
    journal.append("point", {"point_id": "p1", "status": "computed"})
    journal.close()
    with journal.path.open("a") as handle:
        handle.write("not json at all\n")
        handle.write(json.dumps({"journal_schema": JOURNAL_SCHEMA_VERSION + 1,
                                 "kind": "point", "checksum": "x",
                                 "payload": {}}) + "\n")
        handle.write(json.dumps({"journal_schema": JOURNAL_SCHEMA_VERSION,
                                 "kind": "point", "checksum": "x",
                                 "payload": "not a dict"}) + "\n")

    state = CampaignJournal(journal.directory).replay()
    assert state.corrupt_records == 3
    assert state.replayed_records == 1
    assert state.status_of("p1") == "computed"


def test_last_writer_wins_per_point(tmp_path):
    journal = _journal(tmp_path)
    journal.append("point", {"point_id": "p1", "status": "interrupted"})
    journal.append("point", {"point_id": "p1", "status": "computed",
                             "cycles": 5.0})
    journal.close()
    state = CampaignJournal(journal.directory).replay()
    assert state.status_of("p1") == "computed"
    assert state.points["p1"]["cycles"] == 5.0


def test_failed_attempts_accumulate_across_runs(tmp_path):
    journal = _journal(tmp_path)
    for _ in range(3):
        journal.append("point", {"point_id": "p1", "status": "failed",
                                 "error": "boom"})
    journal.close()
    state = CampaignJournal(journal.directory).replay()
    assert state.failed_attempts["p1"] == 3


def test_orphaned_shard_start_strikes_unfinished_points(tmp_path):
    journal = _journal(tmp_path)
    # Run r1 started p1+p2, finished only p1, never wrote run_end: the
    # kill-9 signature.  p2 takes the strike; p1 is innocent.
    journal.append("shard_start", {"run_id": "r1", "points": ["p1", "p2"]})
    journal.append("point", {"point_id": "p1", "run_id": "r1",
                             "status": "computed"})
    journal.close()
    state = CampaignJournal(journal.directory).replay()
    assert state.dead_runs == ["r1"]
    assert state.strikes == {"p2": 1}


def test_strikes_accumulate_over_repeated_deaths(tmp_path):
    journal = _journal(tmp_path)
    journal.append("shard_start", {"run_id": "r1", "points": ["p1", "p2"]})
    journal.append("shard_start", {"run_id": "r2", "points": ["p2"]})
    journal.close()
    state = CampaignJournal(journal.directory).replay()
    assert state.strikes == {"p1": 1, "p2": 2}


def test_clean_run_strikes_nobody(tmp_path):
    journal = _journal(tmp_path)
    journal.append("shard_start", {"run_id": "r1", "points": ["p1"]})
    journal.append("point", {"point_id": "p1", "run_id": "r1",
                             "status": "interrupted"})
    journal.append("run_end", {"run_id": "r1", "interrupted": True})
    journal.close()
    state = CampaignJournal(journal.directory).replay()
    # Checkpointed (SIGTERM) runs end cleanly: interruption is not
    # evidence of poison.
    assert not state.strikes and not state.dead_runs


def test_quarantine_records_replay(tmp_path):
    journal = _journal(tmp_path)
    journal.append("quarantine", {"point_id": "p1", "strikes": 2,
                                  "reason": "killed 2 run(s)"})
    journal.close()
    state = CampaignJournal(journal.directory).replay()
    assert "p1" in state.quarantined
    assert state.quarantined["p1"]["strikes"] == 2


def test_unknown_kinds_are_forward_compatible(tmp_path):
    journal = _journal(tmp_path)
    journal.append("point", {"point_id": "p1", "status": "computed"})
    journal.append("annotation", {"note": "a future record kind"})
    journal.close()
    state = CampaignJournal(journal.directory).replay()
    assert state.corrupt_records == 0
    assert state.replayed_records == 2
    assert state.status_of("p1") == "computed"
