"""The campaign executor: run, resume, retry budgets, quarantine.

In-process tests (the subprocess kill-9 chaos lives in
``test_chaos_campaign.py``).  Fault injection reuses the
``runner._measure_chunk`` swap from the grid-failure tests: workers
fork after the monkeypatch, so injected faults reach them too.
"""

import json

import pytest

from repro.campaign import (
    CampaignError,
    CampaignJournal,
    load_spec,
    parse_spec,
    point_id,
    render_campaign_html,
    report_from_directory,
    run_campaign,
)
from repro.eval import runner

_real_measure_chunk = runner._measure_chunk


def _failing_eqntott(chunk, verify=False, trace=False, resilient=False):
    if chunk[0][0] == "eqntott":
        raise RuntimeError("injected failure")
    return _real_measure_chunk(chunk, verify, trace=trace, resilient=resilient)


def _spec(workloads=("compress",), presets=("base",), configs=((4, 2, 2, 2),),
          **run):
    return parse_spec(
        {
            "campaign": {"name": "t"},
            "grid": {
                "workloads": list(workloads),
                "presets": list(presets),
                "configs": [list(config) for config in configs],
            },
            "run": run,
        }
    )


def test_run_then_resume_computes_nothing_twice(tmp_path, monkeypatch):
    spec = _spec(presets=("base", "improved"), configs=((4, 2, 2, 2), (6, 4, 2, 2)))
    first = run_campaign(spec, tmp_path / "out")
    assert first.complete and first.counts() == {"computed": 4}

    def _explode(*args, **kwargs):
        raise AssertionError("resume of a finished campaign must not compute")

    monkeypatch.setattr(runner, "_measure_chunk", _explode)
    second = run_campaign(spec, tmp_path / "out")
    assert second.digest == first.digest
    assert second.runs == 2 and second.dead_runs == 0


def test_report_json_and_html_published(tmp_path):
    spec = _spec()
    report = run_campaign(spec, tmp_path / "out")
    published = json.loads((tmp_path / "out" / "report.json").read_text())
    assert published["digest"] == report.digest
    assert published["complete"] is True
    html = (tmp_path / "out" / "report.html").read_text()
    assert "Campaign report" in html and "compress" in html
    assert report.digest in html


def test_report_rebuilds_from_journal_alone(tmp_path):
    spec = _spec(presets=("base", "improved"))
    report = run_campaign(spec, tmp_path / "out")
    rebuilt = report_from_directory(spec, tmp_path / "out")
    assert rebuilt.digest == report.digest
    assert rebuilt.counts() == report.counts()


def test_digest_mismatch_refuses_foreign_journal(tmp_path):
    run_campaign(_spec(), tmp_path / "out")
    other = _spec(presets=("improved",))
    with pytest.raises(CampaignError, match="different campaign"):
        run_campaign(other, tmp_path / "out")
    with pytest.raises(CampaignError, match="different campaign"):
        report_from_directory(other, tmp_path / "out")


def test_failed_points_respect_the_retry_budget(tmp_path, monkeypatch):
    monkeypatch.setattr(runner, "_measure_chunk", _failing_eqntott)
    spec = _spec(workloads=("compress", "eqntott"), retries=1)
    bad = [point_id(key) for key in spec.points if key[0] == "eqntott"]

    first = run_campaign(spec, tmp_path / "out")
    assert first.counts() == {"computed": 1, "failed": 1}

    # Resume 1: one failure on the books, budget allows one retry.
    second = run_campaign(spec, tmp_path / "out")
    assert second.counts() == {"computed": 1, "failed": 1}
    state = CampaignJournal(tmp_path / "out").replay()
    assert state.failed_attempts[bad[0]] == 2

    # Resume 2: budget exhausted — the point must not run again.
    def _explode(*args, **kwargs):
        raise AssertionError("retry budget exhausted; must not recompute")

    monkeypatch.setattr(runner, "_measure_chunk", _explode)
    third = run_campaign(spec, tmp_path / "out")
    assert third.counts() == {"computed": 1, "failed": 1}
    assert "injected failure" in third.outcomes[-1].error
    # Failure outcomes carry their accumulated attempts for the report.
    failed = [o for o in third.outcomes if o.status == "failed"]
    assert failed[0].attempts == 2


def test_striked_points_quarantine_at_threshold(tmp_path):
    spec = _spec(presets=("base", "improved"), poison_threshold=2)
    victim = point_id(spec.points[0])

    # Forge the kill-9 history the executor would have left behind:
    # two runs started the victim's shard and never checkpointed.
    journal = CampaignJournal(tmp_path / "out")
    journal.append(
        "campaign",
        {"name": spec.name, "spec_digest": spec.digest,
         "points": len(spec.points)},
    )
    journal.append("shard_start", {"run_id": "dead-1", "points": [victim]})
    journal.append("shard_start", {"run_id": "dead-2", "points": [victim]})
    journal.close()

    report = run_campaign(spec, tmp_path / "out")
    outcomes = {o.point_id: o for o in report.outcomes}
    assert outcomes[victim].status == "quarantined"
    assert "killed 2 run(s)" in outcomes[victim].error
    # The innocent point still computed.
    assert report.counts() == {"computed": 1, "quarantined": 1}
    # The verdict is durable: a further resume keeps it without rerun.
    again = run_campaign(spec, tmp_path / "out")
    assert again.counts() == {"computed": 1, "quarantined": 1}
    assert again.digest == report.digest


def test_single_strike_reruns_in_singleton_shard(tmp_path):
    spec = _spec(presets=("base", "improved"), poison_threshold=2,
                 shard_size=8)
    suspect = point_id(spec.points[0])
    journal = CampaignJournal(tmp_path / "out")
    journal.append(
        "campaign",
        {"name": spec.name, "spec_digest": spec.digest,
         "points": len(spec.points)},
    )
    journal.append("shard_start", {"run_id": "dead-1", "points": [suspect]})
    journal.close()

    report = run_campaign(spec, tmp_path / "out")
    assert report.counts() == {"computed": 2}
    # The resume isolated the suspect: its shard_start lists it alone.
    starts = [
        json.loads(line)["payload"]["points"]
        for line in (tmp_path / "out" / "journal.jsonl").read_text().splitlines()
        if json.loads(line).get("kind") == "shard_start"
    ]
    assert [suspect] in starts


def test_corrupt_journal_records_recompute_not_crash(tmp_path):
    spec = _spec(presets=("base", "improved"))
    first = run_campaign(spec, tmp_path / "out")
    assert first.complete

    # Flip a byte inside the first computed-point record's payload.
    journal_path = tmp_path / "out" / "journal.jsonl"
    lines = journal_path.read_text().splitlines()
    for index, line in enumerate(lines):
        record = json.loads(line)
        if record.get("kind") == "point":
            record["payload"]["cycles"] = -1.0  # checksum now wrong
            lines[index] = json.dumps(record)
            break
    journal_path.write_text("\n".join(lines) + "\n")

    second = run_campaign(spec, tmp_path / "out")
    assert second.complete
    assert second.corrupt_records == 1
    # The damaged point was recomputed to the same deterministic
    # numbers, so the digest converges to the undamaged run's.
    assert second.digest == first.digest


def test_html_reports_failure_accounting(tmp_path, monkeypatch):
    monkeypatch.setattr(runner, "_measure_chunk", _failing_eqntott)
    spec = _spec(workloads=("compress", "eqntott"), retries=0)
    run_campaign(spec, tmp_path / "out")
    html = (tmp_path / "out" / "report.html").read_text()
    assert "Failures and quarantine" in html
    assert "injected failure" in html
    assert "corrupt" in html


def test_render_html_handles_pending_points(tmp_path):
    # A checkpointed campaign renders with pending rows, no crash.
    spec = _spec(presets=("base", "improved"))
    journal = CampaignJournal(tmp_path / "out")
    journal.append(
        "campaign",
        {"name": spec.name, "spec_digest": spec.digest,
         "points": len(spec.points)},
    )
    journal.close()
    report = report_from_directory(spec, tmp_path / "out")
    assert report.counts() == {"pending": 2}
    html = render_campaign_html(report)
    assert "pending" in html


def test_trace_flag_writes_chrome_trace(tmp_path):
    spec = _spec(trace=True)
    report = run_campaign(spec, tmp_path / "out")
    assert report.traces, "trace=true must produce a trace file"
    trace = json.loads((tmp_path / "out" / report.traces[0]).read_text())
    assert trace["traceEvents"]
    html = (tmp_path / "out" / "report.html").read_text()
    assert report.traces[0] in html
