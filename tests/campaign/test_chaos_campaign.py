"""Campaign-level chaos: kill -9 a real campaign, resume, converge.

These tests run ``repro campaign run`` as a genuine subprocess and
murder it with SIGKILL at seeded journal-append counts — after the
header, mid-shard, between shards — via the journal's
``REPRO_CAMPAIGN_KILL_AFTER`` hook (the kill fires *after* the Nth
record is durable, the exact moment an adversarial scheduler would
strike).  Each killed campaign is then resumed with the hook unset and
must converge to a :class:`CampaignReport` whose digest is identical
to an uninterrupted run's: same points, same measurements, same
failure verdicts, regardless of how many times the process died.

SIGTERM gets the softer treatment it is owed: a polite kill must
checkpoint (journal the cut points, write ``run_end``, publish the
report, exit 3), and the resume must again converge to the baseline
digest.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import KILL_ENV_VAR

SPEC = """
[campaign]
name = "chaos"

[grid]
workloads = ["compress"]
presets = ["base", "improved"]
configs = [[4, 2, 2, 2], [6, 4, 2, 2], [8, 6, 2, 2]]

[run]
shard_size = 2
"""
# 6 points in 3 shards of 2: the journal writes 1 header + per shard
# (1 shard_start + 2 points) + 1 run_end = 11 records on a clean run.
TOTAL_POINTS = 6

#: Seeded kill points: just after the header (nothing computed), mid
#: shard 2 (one shard complete, one torn), and mid shard 3 (almost
#: done).  Three distinct crash phases, as the acceptance criteria
#: demand.
KILL_AFTER = (1, 6, 9)


def _env(extra=None):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(KILL_ENV_VAR, None)
    if extra:
        env.update(extra)
    return env


def _campaign(tmp_path, name, spec_path, extra_env=None, expect=0):
    out = tmp_path / name
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "campaign", "run", str(spec_path),
         "--out", str(out), "--quiet"],
        env=_env(extra_env),
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == expect, (
        f"rc={proc.returncode}, wanted {expect}\n"
        f"stdout: {proc.stdout}\nstderr: {proc.stderr}"
    )
    return out


def _digest(out: Path) -> str:
    report = json.loads((out / "report.json").read_text())
    assert report["complete"], report["counts"]
    return report["digest"]


@pytest.fixture(scope="module")
def spec_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("spec") / "chaos.toml"
    path.write_text(SPEC)
    return path


@pytest.fixture(scope="module")
def baseline_digest(tmp_path_factory, spec_path):
    out = _campaign(
        tmp_path_factory.mktemp("baseline"), "out", spec_path
    )
    return _digest(out)


@pytest.mark.parametrize("kill_after", KILL_AFTER)
def test_sigkill_then_resume_converges_to_baseline(
    tmp_path, spec_path, baseline_digest, kill_after
):
    out = tmp_path / "out"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "campaign", "run", str(spec_path),
         "--out", str(out), "--quiet"],
        env=_env({KILL_ENV_VAR: str(kill_after)}),
        capture_output=True,
        text=True,
        timeout=300,
    )
    # SIGKILL means SIGKILL: the process must have died by signal 9,
    # with no report published (only the journal survives).
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    assert (out / "journal.jsonl").exists()
    assert not (out / "report.json").exists()
    journal_lines = (out / "journal.jsonl").read_text().splitlines()
    assert len(journal_lines) == kill_after

    # Resume with the hook unset: must finish and match the baseline.
    resumed = _campaign(tmp_path, "out", spec_path)
    report = json.loads((resumed / "report.json").read_text())
    assert report["digest"] == baseline_digest
    assert report["counts"] == {"computed": TOTAL_POINTS}
    # The death is on the books — one dead run — but not in the digest.
    # (A run killed right after the header never wrote a shard_start,
    # so it leaves no orphan to count: it did no work to lose.)
    expected_dead = 1 if kill_after > 1 else 0
    assert report["dead_runs"] == expected_dead
    assert report["runs"] == expected_dead + 1


def test_double_kill_still_converges_without_false_quarantine(
    tmp_path, spec_path, baseline_digest
):
    # Kill twice at different depths: resumed singleton shards mean the
    # second death convicts at most the one point that was in flight,
    # and with poison_threshold=2 nothing reaches quarantine here
    # because the second kill lands after the first's suspect finished.
    out = tmp_path / "out"
    for kill_after in (3, 8):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "campaign", "run", str(spec_path),
             "--out", str(out), "--quiet"],
            env=_env({KILL_ENV_VAR: str(kill_after)}),
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
    resumed = _campaign(tmp_path, "out", spec_path)
    report = json.loads((resumed / "report.json").read_text())
    assert report["digest"] == baseline_digest
    assert report["counts"] == {"computed": TOTAL_POINTS}
    assert report["dead_runs"] == 2


def test_sigterm_checkpoints_and_resume_converges(
    tmp_path, spec_path, baseline_digest
):
    out = tmp_path / "out"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "run", str(spec_path),
         "--out", str(out)],
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    # Wait for the campaign to actually start computing, then SIGTERM.
    deadline = time.time() + 120
    journal = out / "journal.jsonl"
    while time.time() < deadline:
        if journal.exists() and len(journal.read_text().splitlines()) >= 2:
            break
        time.sleep(0.05)
    else:
        proc.kill()
        pytest.fail("campaign never started writing its journal")
    proc.send_signal(signal.SIGTERM)
    output, _ = proc.communicate(timeout=120)
    # Exit 3 is the checkpoint code: resumable, not failed.
    assert proc.returncode == 3, output

    # The checkpoint is clean: run_end present, so no dead runs and no
    # poison strikes from a polite shutdown.
    lines = [json.loads(line) for line in journal.read_text().splitlines()]
    assert any(record["kind"] == "run_end" for record in lines)
    report = json.loads((out / "report.json").read_text())
    assert report["interrupted"] is True
    assert report["dead_runs"] == 0

    resumed = _campaign(tmp_path, "out", spec_path)
    final = json.loads((resumed / "report.json").read_text())
    assert final["digest"] == baseline_digest
    assert final["counts"] == {"computed": TOTAL_POINTS}


def test_corrupted_survivor_journal_recomputes_to_baseline(
    tmp_path, spec_path, baseline_digest
):
    # Complete a campaign, then vandalize the journal: truncate the
    # final record mid-line and bit-flip an earlier point payload.
    out = _campaign(tmp_path, "out", spec_path)
    journal = out / "journal.jsonl"
    lines = journal.read_text().splitlines()
    flipped = 0
    for index, line in enumerate(lines):
        record = json.loads(line)
        if record.get("kind") == "point" and not flipped:
            record["payload"]["cycles"] = 0.0
            lines[index] = json.dumps(record)
            flipped = 1
    mangled = "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
    journal.write_text(mangled)

    resumed = _campaign(tmp_path, "out", spec_path)
    report = json.loads((resumed / "report.json").read_text())
    assert report["corrupt_records"] == 2
    assert report["digest"] == baseline_digest
    assert report["counts"] == {"computed": TOTAL_POINTS}
