"""Campaign spec compilation: validation, determinism, digests."""

import pytest

from repro.campaign import CampaignSpec, SpecError, load_spec, parse_spec, point_id
from repro.campaign.spec import _toml_loads

BASIC = {
    "campaign": {"name": "t"},
    "grid": {
        "workloads": ["compress", "li"],
        "presets": ["base", "improved"],
        "infos": ["dynamic"],
        "configs": [[4, 2, 2, 2], [6, 4, 2, 2]],
    },
}


def test_compiles_cartesian_grid_workload_major():
    spec = parse_spec(BASIC)
    assert spec.name == "t"
    assert len(spec.points) == 2 * 2 * 2
    # Workload-major: all compress points precede all li points, so
    # shards line up with run_grid's chunk-by-workload strategy.
    workloads = [key[0] for key in spec.points]
    assert workloads == sorted(workloads, key=["compress", "li"].index)


def test_point_list_is_deterministic_and_digest_stable():
    first = parse_spec(BASIC)
    second = parse_spec(BASIC)
    assert first.points == second.points
    assert first.digest == second.digest
    assert [point_id(key) for key in first.points] == [
        point_id(key) for key in second.points
    ]


def test_digest_ignores_budgets_but_not_grid():
    with_budget = dict(BASIC, run={"retries": 5, "shard_size": 3})
    assert parse_spec(with_budget).digest == parse_spec(BASIC).digest
    smaller = dict(BASIC, grid=dict(BASIC["grid"], workloads=["compress"]))
    assert parse_spec(smaller).digest != parse_spec(BASIC).digest


def test_point_ids_distinguish_label_twin_options():
    # bs_key / spill_metric do not appear in describe_key labels; the
    # content id must still tell such points apart.
    doc = {
        "campaign": {"name": "twins"},
        "grid": {"experiments": ["ablation_bs_key"]},
    }
    spec = parse_spec(doc)
    ids = [point_id(key) for key in spec.points]
    assert len(ids) == len(set(ids))


def test_experiments_union_and_dedup():
    doc = {
        "campaign": {"name": "e"},
        "grid": {"experiments": ["table2", "table2"]},
    }
    spec = parse_spec(doc)
    assert len(spec.points) == len(set(spec.points))
    assert spec.points


@pytest.mark.parametrize(
    "mutate, message",
    [
        (lambda d: d.__setitem__("tpyo", {}), "unknown key"),
        (lambda d: d["grid"].__setitem__("presets", ["nope"]), "unknown grid.presets"),
        (lambda d: d["grid"].__setitem__("workloads", ["nope"]), "unknown grid.workloads"),
        (lambda d: d["grid"].__setitem__("infos", ["sideways"]), "grid.infos"),
        (lambda d: d["grid"].__setitem__("configs", [[1, 2]]), "four non-negative ints"),
        (lambda d: d.__setitem__("run", {"retries": -1}), "run.retries"),
        (lambda d: d.__setitem__("run", {"jobs": "many"}), "run.jobs"),
        (lambda d: d.__setitem__("run", {"poison_threshold": 0}), "run.poison_threshold"),
        (lambda d: d.__setitem__("run", {"timeout": -2}), "run.timeout"),
        (lambda d: d.__setitem__("run", {"verify": "yes"}), "run.verify"),
        (lambda d: d.__setitem__("run", {"budget": 3}), "unknown key"),
    ],
)
def test_bad_specs_are_spec_errors(mutate, message):
    import copy

    doc = copy.deepcopy(BASIC)
    mutate(doc)
    with pytest.raises(SpecError, match=message):
        parse_spec(doc)


def test_zero_points_is_an_error():
    with pytest.raises(SpecError, match="zero grid points"):
        parse_spec({"campaign": {"name": "x"}, "grid": {}})


def test_mips_sweep_with_limit():
    doc = {
        "campaign": {"name": "s"},
        "grid": {
            "workloads": ["compress"],
            "presets": ["base"],
            "configs": {"sweep": "mips", "limit": 3},
        },
    }
    spec = parse_spec(doc)
    assert len(spec.points) == 3


def test_load_spec_from_toml_file(tmp_path):
    pytest.importorskip("tomllib")
    path = tmp_path / "camp.toml"
    path.write_text(
        """
[campaign]
name = "file-spec"
[grid]
workloads = ["compress"]
presets = ["base"]
configs = [[4, 2, 2, 2]]
[run]
jobs = 2
retries = 3
"""
    )
    spec = load_spec(path)
    assert spec.name == "file-spec"
    assert spec.jobs == 2 and spec.retries == 3
    assert len(spec.points) == 1


def test_invalid_toml_is_a_spec_error(tmp_path):
    pytest.importorskip("tomllib")
    path = tmp_path / "broken.toml"
    path.write_text("[campaign\nname=")
    with pytest.raises(SpecError, match="invalid TOML"):
        load_spec(path)


def test_missing_spec_file_is_a_spec_error(tmp_path):
    with pytest.raises(SpecError, match="cannot read spec"):
        load_spec(tmp_path / "absent.toml")


def test_toml_loads_smoke():
    pytest.importorskip("tomllib")
    assert _toml_loads('a = 1')["a"] == 1


def test_spec_is_frozen():
    spec = parse_spec(BASIC)
    assert isinstance(spec, CampaignSpec)
    with pytest.raises(AttributeError):
        spec.name = "other"
