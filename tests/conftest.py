"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import math

import pytest

from repro.ir import FLOAT, INT, Function, IRBuilder
from repro.lang import compile_source
from repro.machine import RegisterConfig, RegisterFile


def values_equal(a, b, rel: float = 1e-12) -> bool:
    """Float-aware equality: NaN == NaN, tiny relative tolerance."""
    if isinstance(a, float) or isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
        if math.isinf(a) or math.isinf(b):
            return a == b
        return math.isclose(a, b, rel_tol=rel, abs_tol=1e-12)
    return a == b


def assert_same_globals(state_a, state_b) -> None:
    """Compare two globals_state dicts with float-aware equality."""
    assert state_a.keys() == state_b.keys()
    for name in state_a:
        va, vb = state_a[name], state_b[name]
        assert len(va) == len(vb), name
        for i, (x, y) in enumerate(zip(va, vb)):
            assert values_equal(x, y), f"@{name}[{i}]: {x!r} != {y!r}"


def build_straightline(n_values: int = 4) -> Function:
    """A tiny single-block function summing ``n_values`` constants."""
    func = Function("straight", param_types=[INT], return_type=INT)
    builder = IRBuilder(func)
    builder.start_block("entry")
    from repro.ir import BinaryOpcode

    acc = func.params[0]
    for i in range(n_values):
        c = builder.const(i + 1, INT)
        acc = builder.binop(BinaryOpcode.ADD, acc, c)
    builder.ret(acc)
    return func


SMALL_CALL_SOURCE = """
int out[4];

int helper(int x) {
    return x * 3 + 1;
}

void main() {
    int total = 0;
    for (int i = 0; i < 20; i = i + 1) {
        total = total + helper(i);
    }
    out[0] = total;
}
"""


@pytest.fixture(autouse=True, scope="module")
def _fresh_workload_caches():
    """Keep cached compiles/profiles from leaking across test modules.

    Compiled workloads (and the measurement/analysis caches hanging
    off them) are process-wide; clearing them at module boundaries
    means no module can depend on — or be broken by — what an earlier
    module happened to compile or measure.
    """
    yield
    from repro.eval.runner import clear_caches
    from repro.workloads.registry import clear_compiled_cache

    clear_caches()
    clear_compiled_cache()


@pytest.fixture
def small_call_program():
    return compile_source(SMALL_CALL_SOURCE)


@pytest.fixture
def tiny_regfile():
    return RegisterFile(RegisterConfig(3, 2, 2, 2))


@pytest.fixture
def full_regfile():
    from repro.machine import full_register_file

    return full_register_file()
