"""Unit tests for the Profile container itself."""

from repro.analysis.frequency import BlockWeights
from repro.ir.function import BasicBlock, Function
from repro.ir.types import INT
from repro.profile import Profile


def blocks(n):
    return [BasicBlock(f"b{n_}") for n_ in range(n)]


class TestProfileCounters:
    def test_record_and_count(self):
        profile = Profile()
        b0, b1 = blocks(2)
        profile.record_block(b0)
        profile.record_block(b0)
        profile.record_block(b1)
        assert profile.count(b0) == 2
        assert profile.count(b1) == 1

    def test_missing_block_counts_zero(self):
        profile = Profile()
        (b0,) = blocks(1)
        assert profile.count(b0) == 0

    def test_entries(self):
        profile = Profile()
        profile.record_entry("f")
        profile.record_entry("f")
        assert profile.entries("f") == 2
        assert profile.entries("ghost") == 0

    def test_merge_accumulates(self):
        b0, b1 = blocks(2)
        a = Profile()
        a.record_block(b0)
        a.record_entry("f")
        b = Profile()
        b.record_block(b0)
        b.record_block(b1)
        b.record_entry("f")
        b.record_entry("g")
        merged = a.merge(b)
        assert merged is a
        assert a.count(b0) == 2
        assert a.count(b1) == 1
        assert a.entries("f") == 2
        assert a.entries("g") == 1


class TestWeightsView:
    def test_weights_cover_all_blocks(self):
        func = Function("f", param_types=[INT], return_type=None)
        block_a = func.new_block("a")
        block_b = func.new_block("b")
        profile = Profile()
        profile.record_entry("f")
        profile.record_block(block_a)
        weights = profile.weights(func)
        assert weights.entry_weight == 1.0
        assert weights.weight(block_a) == 1.0
        assert weights.weight(block_b) == 0.0

    def test_block_weights_default(self):
        weights = BlockWeights()
        (b0,) = blocks(1)
        assert weights.weight(b0) == 0.0
        assert weights.entry_weight == 1.0
