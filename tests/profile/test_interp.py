"""Unit tests for the IR interpreter (profiling oracle)."""

import pytest

from repro.lang import compile_source
from repro.profile import InterpreterError, run_program


def run_body(body: str, prelude: str = "int out[8];"):
    program = compile_source(f"{prelude}\nvoid main() {{ {body} }}")
    return run_program(program)


class TestArithmetic:
    def test_c_division_toward_zero(self):
        result = run_body(
            "out[0] = 7 / 2; out[1] = -7 / 2; out[2] = 7 / -2; out[3] = -7 / -2;"
        )
        assert result.globals_state["out"][:4] == [3, -3, -3, 3]

    def test_c_modulo_sign_of_dividend(self):
        result = run_body(
            "out[0] = 7 % 3; out[1] = -7 % 3; out[2] = 7 % -3; out[3] = -7 % -3;"
        )
        assert result.globals_state["out"][:4] == [1, -1, 1, -1]

    def test_division_by_zero(self):
        with pytest.raises(InterpreterError, match="division by zero"):
            run_body("int z = 0; out[0] = 1 / z;")

    def test_modulo_by_zero(self):
        with pytest.raises(InterpreterError, match="modulo by zero"):
            run_body("int z = 0; out[0] = 1 % z;")

    def test_float_division_by_zero(self):
        program = compile_source(
            "float fout[1];\nvoid main() { float z = 0.0; fout[0] = 1.0 / z; }"
        )
        with pytest.raises(InterpreterError, match="float division"):
            run_program(program)

    def test_and_or_are_bitwise_on_bools(self):
        result = run_body("out[0] = (3 < 4) && (2 < 3); out[1] = (3 < 2) || (1 < 0);")
        assert result.globals_state["out"][:2] == [1, 0]


class TestMemory:
    def test_out_of_bounds_load(self):
        with pytest.raises(InterpreterError, match="out of bounds"):
            run_body("int i = 9; out[0] = out[i + 100];")

    def test_out_of_bounds_store(self):
        with pytest.raises(InterpreterError, match="out of bounds"):
            run_body("int i = -1; out[i] = 3;")

    def test_globals_persist_across_calls(self):
        program = compile_source(
            """
            int g[2];
            void bump() { g[0] = g[0] + 1; }
            void main() { bump(); bump(); bump(); }
            """
        )
        assert run_program(program).globals_state["g"][0] == 3


class TestExecutionControl:
    def test_fuel_exhaustion(self):
        program = compile_source(
            "void main() { int i = 0; while (i < 1000000) { i = i + 1; } }"
        )
        with pytest.raises(InterpreterError, match="fuel"):
            run_program(program, fuel=1000)

    def test_run_named_function_with_args(self):
        program = compile_source("int dbl(int x) { return x * 2; }\nvoid main() { }")
        result = run_program(program, "dbl", [21])
        assert result.return_value == 42

    def test_wrong_arity(self):
        program = compile_source("int dbl(int x) { return x * 2; }\nvoid main() { }")
        with pytest.raises(InterpreterError, match="expects 1 arguments"):
            run_program(program, "dbl", [1, 2])

    def test_instruction_count_positive(self):
        result = run_body("out[0] = 1;")
        assert result.instructions_executed > 0


class TestProfile:
    def test_block_counts_reflect_loop(self):
        program = compile_source(
            "void main() { for (int i = 0; i < 13; i = i + 1) { int x = i; } }"
        )
        result = run_program(program)
        func = program.function("main")
        body = next(b for b in func.blocks if b.name.startswith("for_body"))
        head = next(b for b in func.blocks if b.name.startswith("for_head"))
        assert result.profile.count(body) == 13
        assert result.profile.count(head) == 14  # one extra failing test
        assert result.profile.count(func.entry) == 1

    def test_entry_counts(self):
        program = compile_source(
            """
            int id(int x) { return x; }
            void main() { for (int i = 0; i < 5; i = i + 1) { int v = id(i); } }
            """
        )
        result = run_program(program)
        assert result.profile.entries("id") == 5

    def test_profile_weights(self):
        program = compile_source(
            """
            int id(int x) { return x; }
            void main() { for (int i = 0; i < 5; i = i + 1) { int v = id(i); } }
            """
        )
        result = run_program(program)
        func = program.function("id")
        weights = result.profile.weights(func)
        assert weights.entry_weight == 5.0
        assert weights.weight(func.entry) == 5.0

    def test_cold_function_zero_weights(self):
        program = compile_source(
            """
            int never(int x) { return x; }
            void main() { int y = 1; }
            """
        )
        result = run_program(program)
        func = program.function("never")
        weights = result.profile.weights(func)
        assert weights.entry_weight == 0.0
        assert all(weights.weight(b) == 0.0 for b in func.blocks)

    def test_profile_merge(self):
        program = compile_source("void main() { int x = 1; }")
        a = run_program(program).profile
        b = run_program(program).profile
        merged = a.merge(b)
        func = program.function("main")
        assert merged.count(func.entry) == 2
        assert merged.entries("main") == 2
