"""Unit tests for the machine-level interpreter (the oracle itself).

Beyond the happy path (allocated code computes what the IR computes),
these tests check the oracle *catches* convention violations: a
live range held in a caller-save register across a call without
save/restore code must trip the poison check.
"""

import pytest

from repro.lang import compile_source
from repro.machine import RegisterConfig, register_file
from repro.profile import MachineError, run_allocated, run_program
from repro.regalloc import AllocatorOptions, allocate_program
from repro.regalloc.spillinstr import OverheadKind, SpillLoad, SpillStore
from tests.conftest import SMALL_CALL_SOURCE, assert_same_globals


def allocate(source: str, config=(4, 3, 2, 2), options=None):
    program = compile_source(source)
    options = options or AllocatorOptions.base_chaitin()
    allocation = allocate_program(program, register_file(RegisterConfig(*config)), options)
    return program, allocation


class TestHappyPath:
    def test_small_program_equivalent(self):
        program, allocation = allocate(SMALL_CALL_SOURCE)
        base = run_program(program)
        mech = run_allocated(allocation)
        assert_same_globals(base.globals_state, mech.globals_state)

    def test_return_value_propagates(self):
        source = """
        int add3(int a, int b, int c) { return a + b + c; }
        void main() { }
        """
        program, allocation = allocate(source)
        mech_result = run_allocated(allocation, "add3", [1, 2, 3])
        assert mech_result.return_value == 6

    def test_recursion_with_callee_saves(self):
        source = """
        int out[1];
        int fib(int n) {
            if (n < 2) { return n; }
            int a = fib(n - 1);
            int b = fib(n - 2);
            return a + b;
        }
        void main() { out[0] = fib(12); }
        """
        program, allocation = allocate(source, config=(4, 2, 3, 1))
        base = run_program(program)
        mech = run_allocated(allocation)
        assert_same_globals(base.globals_state, mech.globals_state)
        assert mech.globals_state["out"][0] == 144

    def test_overhead_counts_by_kind(self):
        program, allocation = allocate(SMALL_CALL_SOURCE, config=(4, 3, 0, 0))
        mech = run_allocated(allocation)
        # With zero callee-save registers the loop state crossing the
        # call must pay caller-save cost on every iteration.
        assert mech.overhead_counts[OverheadKind.CALLER_SAVE] > 0
        assert mech.overhead_counts[OverheadKind.CALLEE_SAVE] == 0


class TestOracleCatchesViolations:
    def test_missing_caller_save_is_caught(self):
        program, allocation = allocate(SMALL_CALL_SOURCE, config=(4, 3, 0, 0))
        # Sabotage: strip all caller-save save/restore code.
        for fa in allocation.functions.values():
            for block in fa.func.blocks:
                block.instrs = [
                    i
                    for i in block.instrs
                    if not (
                        isinstance(i, (SpillLoad, SpillStore))
                        and i.kind is OverheadKind.CALLER_SAVE
                    )
                ]
        with pytest.raises(MachineError, match="clobbered"):
            run_allocated(allocation)

    def test_missing_callee_save_breaks_caller(self):
        source = """
        int out[1];
        int inner(int x) { return x + 1; }
        int mid(int x) {
            int a = inner(x);
            int b = inner(a);
            return a + b;
        }
        void main() {
            int acc = 0;
            for (int i = 0; i < 10; i = i + 1) {
                acc = acc + mid(i);
            }
            out[0] = acc;
        }
        """
        # One callee-save integer register: main's accumulator and
        # mid's call-crossing local must share it, so stripping mid's
        # entry/exit saves corrupts main.
        program, allocation = allocate(source, config=(4, 2, 1, 1))
        # Sabotage: make the callee clobber every callee-save register
        # it was supposed to preserve, by removing its entry/exit code.
        stripped = False
        for fa in allocation.functions.values():
            for block in fa.func.blocks:
                before = len(block.instrs)
                block.instrs = [
                    i
                    for i in block.instrs
                    if not (
                        isinstance(i, (SpillLoad, SpillStore))
                        and i.kind is OverheadKind.CALLEE_SAVE
                    )
                ]
                stripped = stripped or len(block.instrs) != before
        if not stripped:
            pytest.skip("allocation used no callee-save registers")
        base = run_program(program)
        # Without entry/exit saves the caller's values survive only by
        # luck; either the run errors or produces different state.
        try:
            mech = run_allocated(allocation)
        except MachineError:
            return
        assert mech.globals_state != base.globals_state

    def test_unwritten_slot_reload_caught(self):
        program, allocation = allocate(SMALL_CALL_SOURCE, config=(4, 3, 0, 0))
        fa = allocation.functions["main"]
        # Sabotage: inject a reload from a slot nobody wrote.
        from repro.ir.values import VReg

        bogus = SpillLoad(
            next(iter(fa.assignment.values())), slot=9999, kind=OverheadKind.SPILL
        )
        fa.func.entry.instrs.insert(0, bogus)
        with pytest.raises(MachineError, match="unwritten slot"):
            run_allocated(allocation)


class TestConventionSemantics:
    def test_caller_save_poisoned_after_call(self):
        # A value in a caller-save register IS saved/restored by the
        # allocator, so the program still works; this test verifies the
        # save/restore actually executed (nonzero counts) for a config
        # with no callee-save registers.
        program, allocation = allocate(SMALL_CALL_SOURCE, config=(6, 4, 0, 0))
        mech = run_allocated(allocation)
        base = run_program(program)
        assert_same_globals(base.globals_state, mech.globals_state)
        assert mech.overhead_counts[OverheadKind.CALLER_SAVE] > 0

    def test_callee_save_used_means_entry_exit_code(self):
        source = """
        int out[1];
        int helper(int x) { return x + 1; }
        void main() {
            int a = 3;
            int b = helper(a);
            out[0] = a + b;
        }
        """
        program, allocation = allocate(source, config=(4, 2, 4, 2))
        mech = run_allocated(allocation)
        base = run_program(program)
        assert_same_globals(base.globals_state, mech.globals_state)
