"""The ``repro campaign`` subcommand: run, resume, status, report."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

pytest.importorskip("tomllib", reason="campaign specs need a TOML parser")

SPEC = """
[campaign]
name = "cli-campaign"

[grid]
workloads = ["compress"]
presets = ["base"]
configs = [[4, 2, 2, 2]]
"""


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.toml"
    path.write_text(SPEC)
    return path


def test_run_produces_journal_and_reports(tmp_path, spec_file, capsys):
    out = tmp_path / "out"
    rc = main(["campaign", "run", str(spec_file), "--out", str(out), "-q"])
    assert rc == 0
    captured = capsys.readouterr()
    assert "complete" in captured.out
    assert (out / "journal.jsonl").exists()
    assert (out / "report.json").exists()
    assert (out / "report.html").exists()


def test_run_twice_resumes_and_reports_json(tmp_path, spec_file, capsys):
    out = tmp_path / "out"
    assert main(["campaign", "run", str(spec_file), "--out", str(out), "-q"]) == 0
    capsys.readouterr()
    assert main(
        ["campaign", "run", str(spec_file), "--out", str(out), "-q", "--json"]
    ) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["complete"] is True
    assert report["runs"] == 2
    assert report["counts"] == {"computed": 1}


def test_status_reads_without_writing(tmp_path, spec_file, capsys):
    out = tmp_path / "out"
    assert main(["campaign", "run", str(spec_file), "--out", str(out), "-q"]) == 0
    report_json = (out / "report.json").read_text()
    assert main(["campaign", "status", str(spec_file), "--out", str(out)]) == 0
    assert "complete" in capsys.readouterr().out
    # status regenerated nothing.
    assert (out / "report.json").read_text() == report_json


def test_report_rebuilds_from_journal(tmp_path, spec_file):
    out = tmp_path / "out"
    assert main(["campaign", "run", str(spec_file), "--out", str(out), "-q"]) == 0
    (out / "report.json").unlink()
    (out / "report.html").unlink()
    assert main(["campaign", "report", str(spec_file), "--out", str(out)]) == 0
    assert (out / "report.json").exists()
    assert (out / "report.html").exists()


def test_bad_spec_is_a_usage_error(tmp_path, capsys):
    path = tmp_path / "bad.toml"
    path.write_text("[grid]\nworkloads = [\"no-such-workload\"]\n")
    rc = main(["campaign", "run", str(path), "--out", str(tmp_path / "out")])
    assert rc == 2
    assert "bad campaign spec" in capsys.readouterr().err


def test_mismatched_journal_is_a_campaign_error(tmp_path, spec_file, capsys):
    out = tmp_path / "out"
    assert main(["campaign", "run", str(spec_file), "--out", str(out), "-q"]) == 0
    other = tmp_path / "other.toml"
    other.write_text(SPEC.replace('presets = ["base"]', 'presets = ["improved"]'))
    rc = main(["campaign", "run", str(other), "--out", str(out), "-q"])
    assert rc == 2
    assert "different campaign" in capsys.readouterr().err
