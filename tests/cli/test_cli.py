"""Tests for the command-line interface."""

import pytest

from repro.cli import main

SOURCE = """
int out[2];
int twice(int x) { return x * 2; }
void main() {
    int total = 0;
    for (int i = 0; i < 10; i = i + 1) {
        total = total + twice(i);
    }
    out[0] = total;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(SOURCE)
    return str(path)


class TestCompile:
    def test_prints_ir(self, source_file, capsys):
        assert main(["compile", source_file]) == 0
        output = capsys.readouterr().out
        assert "func @main" in output
        assert "func @twice" in output
        assert "global @out" in output

    def test_optimize_flag(self, source_file, capsys):
        assert main(["compile", source_file, "--optimize"]) == 0
        assert "func @main" in capsys.readouterr().out


class TestRun:
    def test_executes_and_prints_globals(self, source_file, capsys):
        assert main(["run", source_file]) == 0
        output = capsys.readouterr().out
        assert "@out = [90" in output
        assert "instructions executed" in output

    def test_named_entry_with_return(self, source_file, capsys):
        assert main(["run", source_file, "--main", "main"]) == 0


class TestAllocate:
    def test_reports_overhead(self, source_file, capsys):
        assert main(["allocate", source_file, "--config", "4,2,1,1"]) == 0
        output = capsys.readouterr().out
        assert "overhead: total=" in output
        assert "chaitin+SC+BS+PR" in output

    def test_verify_passes(self, source_file, capsys):
        code = main(
            ["allocate", source_file, "--config", "4,2,0,1", "--verify"]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_show_assignment(self, source_file, capsys):
        assert main(
            [
                "allocate",
                source_file,
                "--show-assignment",
                "--allocator",
                "base",
            ]
        ) == 0
        assert "-> $i" in capsys.readouterr().out

    def test_every_allocator_name_accepted(self, source_file):
        for name in ("base", "optimistic", "improved", "priority", "cbh"):
            assert main(["allocate", source_file, "--allocator", name]) == 0

    def test_bad_config_rejected(self, source_file, capsys):
        with pytest.raises(SystemExit):
            main(["allocate", source_file, "--config", "6,4"])

    def test_static_info(self, source_file):
        assert main(["allocate", source_file, "--info", "static"]) == 0


class TestWorkloadsAndSweep:
    def test_workloads_lists_all(self, capsys):
        assert main(["workloads"]) == 0
        output = capsys.readouterr().out
        for name in ("eqntott", "tomcatv", "fpppp"):
            assert name in output

    def test_sweep_short(self, capsys):
        assert main(
            ["sweep", "gcc", "--short", "--allocators", "base", "improved"]
        ) == 0
        output = capsys.readouterr().out
        assert "base" in output
        assert "improved" in output
        assert "(6,4,0,0)" in output

    def test_sweep_timings_table(self, capsys):
        assert main(
            [
                "sweep", "compress", "--short",
                "--allocators", "base", "--timings",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "Pipeline phase timings" in output
        assert "build" in output and "assign" in output
        assert "TOTAL" in output

    def test_sweep_json(self, capsys):
        import json

        assert main(
            [
                "sweep", "compress", "--short",
                "--allocators", "base", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "compress"
        assert "base" in payload["totals"]

    def test_sweep_jobs_matches_serial(self, capsys):
        from repro.eval import clear_caches

        args = ["sweep", "compress", "--short", "--allocators", "base"]
        clear_caches()
        assert main(args) == 0
        serial = capsys.readouterr().out
        clear_caches()
        assert main(args + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial


class TestExperiment:
    def test_experiment_runs_and_writes(self, tmp_path, capsys):
        out_file = tmp_path / "result.txt"
        assert main(["experiment", "table4", "--out", str(out_file)]) == 0
        assert "Table 4" in capsys.readouterr().out
        assert "Table 4" in out_file.read_text()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "figure99"])

    def test_experiment_jobs_matches_serial(self, capsys):
        from repro.eval import clear_caches

        clear_caches()
        assert main(["experiment", "table4"]) == 0
        serial = capsys.readouterr().out
        clear_caches()
        assert main(["experiment", "table4", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_experiment_json_out(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "result.json"
        assert main(
            ["experiment", "table4", "--json", "--out", str(out_file)]
        ) == 0
        payload = json.loads(out_file.read_text())
        assert payload
        json.loads(capsys.readouterr().out)

    def test_experiment_timings(self, capsys):
        assert main(["experiment", "table4", "--timings"]) == 0
        output = capsys.readouterr().out
        assert "Pipeline phase timings" in output


class TestAllocateJson:
    def test_json_report(self, source_file, capsys):
        import json

        assert main(["allocate", source_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["allocator"] == "chaitin+SC+BS+PR"
        assert payload["overhead"]["total"] >= 0
        assert "main" in payload["functions"]
        assert "metrics" in payload

    def test_json_matches_human_numbers(self, source_file, capsys):
        import json
        import re

        assert main(["allocate", source_file]) == 0
        human = capsys.readouterr().out
        total = float(re.search(r"overhead: total=(\d+)", human).group(1))
        assert main(["allocate", source_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert round(payload["overhead"]["total"]) == total

    def test_trace_writes_events(self, source_file, tmp_path, capsys):
        import json

        out = tmp_path / "events.jsonl"
        assert main(["allocate", source_file, "--trace", str(out)]) == 0
        lines = out.read_text().splitlines()
        assert lines
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "assign" in kinds


class TestSchemaVersion:
    """Every JSON payload the CLI emits carries ``schema_version``."""

    def _payload(self, capsys):
        import json

        return json.loads(capsys.readouterr().out)

    def test_allocate_json(self, source_file, capsys):
        from repro.schema import SCHEMA_VERSION

        assert main(["allocate", source_file, "--json"]) == 0
        assert self._payload(capsys)["schema_version"] == SCHEMA_VERSION

    def test_sweep_json_and_failures(self, capsys):
        from repro.schema import SCHEMA_VERSION

        assert main(
            ["sweep", "compress", "--short", "--allocators", "base", "--json"]
        ) == 0
        payload = self._payload(capsys)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert "failures" in payload["grid"]

    def test_experiment_json(self, capsys):
        from repro.schema import SCHEMA_VERSION

        assert main(["experiment", "table4", "--json"]) == 0
        assert self._payload(capsys)["schema_version"] == SCHEMA_VERSION

    def test_explain_json(self, source_file, capsys):
        from repro.schema import SCHEMA_VERSION

        assert main(["explain", source_file, "--lr", "total", "--json"]) == 0
        assert self._payload(capsys)["schema_version"] == SCHEMA_VERSION

    def test_fuzz_json(self, tmp_path, capsys):
        from repro.schema import SCHEMA_VERSION

        assert main(
            [
                "fuzz", "--seeds", "2",
                "--corpus", str(tmp_path / "corpus"), "--json",
            ]
        ) == 0
        assert self._payload(capsys)["schema_version"] == SCHEMA_VERSION

    def test_chaos_json_artifact(self, tmp_path, capsys):
        import json

        from repro.schema import SCHEMA_VERSION

        out = tmp_path / "campaign.json"
        code = main(
            [
                "chaos", "--workloads", "compress",
                "--allocators", "base", "--seeds", "1",
                "--faults", "1", "--json", "--out", str(out),
            ]
        )
        assert code == 0
        assert self._payload(capsys)["schema_version"] == SCHEMA_VERSION
        assert json.loads(out.read_text())["schema_version"] == SCHEMA_VERSION


class TestExplain:
    def test_explains_a_live_range(self, source_file, capsys):
        assert main(["explain", source_file, "--lr", "total"]) == 0
        output = capsys.readouterr().out
        assert "live range" in output and ":total" in output
        assert "benefit_caller" in output
        assert "benefit_callee" in output
        assert "spill cost" in output
        assert "decision chain:" in output
        assert "allocation verifier: passed" in output

    def test_json_mode(self, source_file, capsys):
        import json

        assert main(["explain", source_file, "--lr", "total", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["benefit_caller"] == (
            payload["spill_cost"] - payload["caller_cost"]
        )
        assert payload["verified"] is True
        assert payload["chain"]

    def test_unknown_live_range_fails(self, source_file, capsys):
        assert main(["explain", source_file, "--lr", "nope"]) == 1
        assert "no live range matches" in capsys.readouterr().err

    def test_func_and_allocator_flags(self, source_file, capsys):
        assert main(
            [
                "explain", source_file, "--lr", "x",
                "--func", "twice", "--allocator", "cbh",
            ]
        ) == 0
        assert "twice()" in capsys.readouterr().out


class TestSweepTrace:
    def test_writes_chrome_trace(self, tmp_path, capsys):
        import json

        from repro.eval import clear_caches

        clear_caches()
        out = tmp_path / "trace.json"
        assert main(
            [
                "sweep", "compress", "--short",
                "--allocators", "base",
                "--jobs", "2", "--trace", str(out),
            ]
        ) == 0
        payload = json.loads(out.read_text())
        complete = [
            e for e in payload["traceEvents"] if e.get("ph") == "X"
        ]
        assert complete
        assert {e["name"] for e in complete} >= {"build", "assign"}
        pids = {e["pid"] for e in complete}
        assert len(pids) >= 2, "spans must come from several workers"

    def test_json_includes_metrics(self, capsys):
        import json

        assert main(
            [
                "sweep", "compress", "--short",
                "--allocators", "base", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        counters = payload["metrics"]["counters"]
        assert "grid.computed" in counters or "grid.cached" in counters
        gauges = payload["metrics"]["gauges"]
        assert "results_cache.hits" in gauges

    def test_timings_report_cache_hit_rate(self, capsys):
        assert main(
            [
                "sweep", "compress", "--short",
                "--allocators", "base", "--timings",
            ]
        ) == 0
        assert "hit rate" in capsys.readouterr().out
