"""CLI handling of textual-IR (.ir) inputs."""

from pathlib import Path

import pytest

from repro.cli import main

IR_EXAMPLE = Path(__file__).parent.parent.parent / "examples" / "popcount.ir"


class TestIRInput:
    def test_run_ir_file(self, capsys):
        assert main(["run", str(IR_EXAMPLE)]) == 0
        output = capsys.readouterr().out
        # sum(popcount(n) for n in range(64)) == 192; popcount(63) == 6
        assert "@out = [192, 6]" in output

    def test_compile_ir_file_normalizes(self, capsys):
        assert main(["compile", str(IR_EXAMPLE)]) == 0
        output = capsys.readouterr().out
        assert "func @popcount" in output

    def test_allocate_and_verify_ir_file(self, capsys):
        code = main(
            ["allocate", str(IR_EXAMPLE), "--config", "3,2,1,1", "--verify"]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_optimize_flag_on_ir(self, tmp_path, capsys):
        assert main(["run", str(IR_EXAMPLE), "--optimize"]) == 0
        assert "@out = [192, 6]" in capsys.readouterr().out
