"""The ``repro cache`` subcommand and the ``--store`` CLI plumbing."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.store import ENV_VAR, ArtifactStore, configure_store
from repro.workloads.registry import clear_compiled_cache

SOURCE = """
int out[2];
int twice(int x) { return x * 2; }
void main() {
    int total = 0;
    for (int i = 0; i < 10; i = i + 1) {
        total = total + twice(i);
    }
    out[0] = total;
}
"""


@pytest.fixture(autouse=True)
def _isolated_store(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    configure_store(None, export_env=False)
    clear_compiled_cache()
    yield
    monkeypatch.delenv(ENV_VAR, raising=False)
    configure_store(None, export_env=False)
    clear_compiled_cache()


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(SOURCE)
    return str(path)


def populate(tmp_path, count: int = 3) -> str:
    root = str(tmp_path / "store")
    store = ArtifactStore(root)
    for i in range(count):
        store.put(f"{i:02x}" + "f" * 62, "program", {"index": i})
    return root


class TestCacheStats:
    def test_stats_reports_entries_bytes_and_schema(self, tmp_path, capsys):
        root = populate(tmp_path)
        assert main(["cache", "stats", "--store", root]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["schema_version"] == 1
        assert stats["root"] == root
        assert stats["entries"] == 3
        assert stats["bytes"] > 0
        assert stats["by_kind"] == {"program": 3}
        assert "hit_rate" in stats and "lru" in stats

    def test_store_root_comes_from_the_environment(
        self, tmp_path, capsys, monkeypatch
    ):
        root = populate(tmp_path)
        monkeypatch.setenv(ENV_VAR, root)
        assert main(["cache", "stats"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 3

    def test_no_root_anywhere_is_an_error(self, capsys):
        assert main(["cache", "stats"]) == 1
        assert ENV_VAR in capsys.readouterr().err


class TestCacheClear:
    def test_clear_empties_the_store(self, tmp_path, capsys):
        root = populate(tmp_path)
        assert main(["cache", "clear", "--store", root]) == 0
        assert "cleared 3 artifact(s)" in capsys.readouterr().out
        assert ArtifactStore(root).stats()["entries"] == 0


class TestCacheGC:
    def test_gc_respects_the_byte_budget(self, tmp_path, capsys):
        root = populate(tmp_path)
        sizes = sum(
            p.stat().st_size for p in ArtifactStore(root)._artifact_files()
        )
        assert main(
            ["cache", "gc", "--store", root, "--max-bytes", str(sizes - 1)]
        ) == 0
        assert "evicted 1 artifact(s)" in capsys.readouterr().out
        assert ArtifactStore(root).stats()["entries"] == 2

    def test_gc_requires_max_bytes(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "gc", "--store", str(tmp_path)])


class TestStoreFlag:
    def test_allocate_with_store_publishes_and_reuses(
        self, tmp_path, source_file, capsys
    ):
        root = str(tmp_path / "store")
        assert main(["allocate", source_file, "--store", root, "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert ArtifactStore(root).stats()["entries"] == 1
        # Fresh process state is simulated by the autouse fixture
        # running configure_store(None); re-point at the same root.
        configure_store(None, export_env=False)
        assert main(["allocate", source_file, "--store", root, "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second == first
        # No REPRO_STORE_DIR leak into this test process's siblings is
        # checked by the autouse fixture teardown; here just confirm
        # the flag exported it for child processes.
        assert os.environ[ENV_VAR] == root

    def test_sweep_json_carries_store_counters(
        self, tmp_path, capsys
    ):
        from repro.obs.metrics import METRICS

        METRICS.clear()
        root = str(tmp_path / "store")
        assert main(
            ["sweep", "compress", "--short", "--store", root, "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        counters = report["metrics"]["counters"]
        assert counters.get("store.write", 0) == 1
        configure_store(None, export_env=False)
        clear_compiled_cache()
        from repro.eval.runner import clear_caches

        clear_caches()
        from repro.obs.metrics import METRICS

        METRICS.clear()
        assert main(
            ["sweep", "compress", "--short", "--store", root, "--json"]
        ) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["metrics"]["counters"].get("store.hit", 0) >= 1
