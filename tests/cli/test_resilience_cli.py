"""CLI coverage for --resilient flags and the chaos subcommand."""

import json

import pytest

from repro.cli import main

SOURCE = """
int out[2];
int twice(int x) { return x * 2; }
void main() {
    int total = 0;
    for (int i = 0; i < 10; i = i + 1) {
        total = total + twice(i);
    }
    out[0] = total;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(SOURCE)
    return str(path)


class TestAllocateResilient:
    def test_clean_run_reports_primary(self, source_file, capsys):
        assert main(["allocate", source_file, "--resilient", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["resilience"]["rung"] == "primary"
        assert report["resilience"]["degraded"] is False

    def test_spillall_allocator_resilient(self, source_file, capsys):
        assert (
            main(
                [
                    "allocate",
                    source_file,
                    "--resilient",
                    "--allocator",
                    "spillall",
                    "--verify",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "verification: PASS" in out
        assert "execution check: PASS" in out


class TestSweepResilient:
    def test_json_includes_resilience_map(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "li",
                    "--short",
                    "--allocators",
                    "improved",
                    "--resilient",
                    "--json",
                ]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert "resilience" in report
        cells = report["resilience"]["improved"]
        assert set(cells) == set(report["totals"]["improved"])
        for cell in cells.values():
            assert cell is None or "rung" in cell

    def test_plain_sweep_has_no_resilience_key(self, capsys):
        assert (
            main(
                ["sweep", "li", "--short", "--allocators", "improved", "--json"]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert "resilience" not in report


class TestChaosCommand:
    def test_small_campaign_passes(self, capsys):
        assert (
            main(
                [
                    "chaos",
                    "--workloads",
                    "li",
                    "--allocators",
                    "improved",
                    "--seeds",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "chaos campaign: 2 run(s)" in out
        assert "verifier-clean" in out

    def test_json_and_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "campaign.json"
        assert (
            main(
                [
                    "chaos",
                    "--workloads",
                    "li",
                    "--allocators",
                    "base",
                    "--seeds",
                    "2",
                    "--json",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["all_clean"] is True
        assert report["total_runs"] == 2
        assert "metrics" in report
        on_disk = json.loads(out_path.read_text())
        assert on_disk["total_runs"] == 2

    def test_min_injections_gate(self, capsys):
        # A zero-fault plan can never fire anything; the gate trips.
        assert (
            main(
                [
                    "chaos",
                    "--workloads",
                    "li",
                    "--allocators",
                    "improved",
                    "--seeds",
                    "1",
                    "--faults",
                    "0",
                    "--min-injections",
                    "1",
                ]
            )
            == 1
        )
