"""Phase budgets and the structured convergence error."""

import pytest

from repro.machine import RegisterConfig, RegisterFile
from repro.regalloc import (
    AllocationBudget,
    BudgetExceeded,
    ConvergenceError,
    allocate_program,
)
from repro.regalloc.options import AllocatorOptions

STARVED = RegisterFile(RegisterConfig(3, 2, 1, 1))

#: Eight ints live across every call: guaranteed to spill on STARVED.
SPILLY_SOURCE = """
int out[8];
int bump(int x) { return x + 1; }
void main() {
    int a = 1; int b = 2; int c = 3; int d = 4;
    int e = 5; int f = 6; int g = 7; int h = 8;
    for (int i = 0; i < 5; i = i + 1) {
        a = a + bump(b); b = b + bump(c); c = c + bump(d); d = d + bump(e);
        e = e + bump(f); f = f + bump(g); g = g + bump(h); h = h + bump(a);
    }
    out[0] = a + b + c + d;
    out[1] = e + f + g + h;
}
"""


@pytest.fixture(scope="module")
def spilly_program():
    from repro.lang import compile_source

    return compile_source(SPILLY_SOURCE)


def _assignment_repr(fa):
    """Clone-independent view of one function's assignment."""
    return {repr(reg): phys.name for reg, phys in fa.assignment.items()}


class TestBudgetChecks:
    def test_limits_must_be_non_negative(self):
        with pytest.raises(ValueError):
            AllocationBudget(deadline_seconds=-1.0)
        with pytest.raises(ValueError):
            AllocationBudget(max_iterations=-1)

    def test_iteration_ceiling(self):
        budget = AllocationBudget(max_iterations=3)
        budget.check_iterations("f", 3)  # at the ceiling is fine
        with pytest.raises(BudgetExceeded) as exc:
            budget.check_iterations("f", 4)
        assert exc.value.limit_kind == "iterations"
        assert exc.value.limit == 3
        assert exc.value.observed == 4
        assert exc.value.function == "f"
        assert exc.value.phase is None

    def test_spill_ceiling(self):
        budget = AllocationBudget(max_spills=2)
        budget.check_spills("f", 2)
        with pytest.raises(BudgetExceeded) as exc:
            budget.check_spills("f", 5)
        assert exc.value.limit_kind == "spills"

    def test_no_limits_never_fires(self):
        budget = AllocationBudget()
        budget.check_deadline("f", "build")
        budget.check_iterations("f", 10**6)
        budget.check_spills("f", 10**6)

    def test_zero_deadline_fires_on_first_check(self):
        budget = AllocationBudget(deadline_seconds=0.0)
        with pytest.raises(BudgetExceeded) as exc:
            budget.check_deadline("f", "build")
        assert exc.value.limit_kind == "deadline"
        assert exc.value.phase == "build"

    def test_as_dict_round_trip(self):
        error = BudgetExceeded("iterations", 2, 3, "main")
        data = error.as_dict()
        assert data["limit_kind"] == "iterations"
        assert data["function"] == "main"
        assert "ceiling" in data["message"]


class TestBudgetedAllocation:
    def test_zero_deadline_aborts_allocation(self, small_call_program):
        budget = AllocationBudget(deadline_seconds=0.0)
        with pytest.raises(BudgetExceeded) as exc:
            allocate_program(
                small_call_program, STARVED, AllocatorOptions(), budget=budget
            )
        assert exc.value.limit_kind == "deadline"
        assert exc.value.phase is not None

    def test_iteration_budget_aborts_spilling_run(self, spilly_program):
        # The starved file forces at least one spill round, i.e. more
        # than one iteration somewhere.
        budget = AllocationBudget(max_iterations=1)
        with pytest.raises(BudgetExceeded) as exc:
            allocate_program(
                spilly_program, STARVED, AllocatorOptions(), budget=budget
            )
        assert exc.value.limit_kind == "iterations"

    def test_spill_budget_aborts_spilling_run(self, spilly_program):
        budget = AllocationBudget(max_spills=0)
        with pytest.raises(BudgetExceeded) as exc:
            allocate_program(
                spilly_program, STARVED, AllocatorOptions(), budget=budget
            )
        assert exc.value.limit_kind == "spills"

    def test_generous_budget_changes_nothing(self, small_call_program):
        budget = AllocationBudget(
            deadline_seconds=120.0, max_iterations=100, max_spills=10_000
        )
        budgeted = allocate_program(
            small_call_program, STARVED, AllocatorOptions(), budget=budget
        )
        plain = allocate_program(small_call_program, STARVED, AllocatorOptions())
        for name, fa in plain.functions.items():
            assert _assignment_repr(budgeted.functions[name]) == _assignment_repr(fa)

    def test_resilient_run_absorbs_blown_budget(self, small_call_program):
        budget = AllocationBudget(deadline_seconds=0.0)
        allocation = allocate_program(
            small_call_program,
            STARVED,
            AllocatorOptions(),
            budget=budget,
            resilient=True,
        )
        report = allocation.resilience
        assert report is not None
        assert report.degraded
        # The final rung runs unbudgeted, so the chain always lands.
        assert report.rung == "spillall"
        assert all(
            record.error_type == "BudgetExceeded" for record in report.demotions
        )


class TestConvergenceError:
    def test_structured_error_after_max_iterations(
        self, spilly_program, monkeypatch
    ):
        import repro.regalloc.framework as framework

        monkeypatch.setattr(framework, "MAX_ITERATIONS", 1)
        with pytest.raises(ConvergenceError) as exc:
            allocate_program(spilly_program, STARVED, AllocatorOptions())
        error = exc.value
        assert error.iterations == 1
        assert error.spill_history  # one spill list per iteration
        assert all(isinstance(spills, list) for spills in error.spill_history)
        assert error.stats is not None
        data = error.as_dict()
        assert data["function"] == error.function
        assert data["iterations"] == 1
        assert data["spill_history"] == error.spill_history

    def test_resilient_run_absorbs_convergence_error(
        self, spilly_program, monkeypatch
    ):
        import repro.regalloc.framework as framework

        monkeypatch.setattr(framework, "MAX_ITERATIONS", 1)
        allocation = allocate_program(
            spilly_program, STARVED, AllocatorOptions(), resilient=True
        )
        report = allocation.resilience
        assert report is not None
        assert report.degraded
        assert report.rung == "spillall"
        assert any(
            record.error_type == "ConvergenceError"
            for record in report.demotions
        )
