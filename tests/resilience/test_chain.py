"""The fallback chain: ladders, demotion records, determinism."""

import pytest

from repro.machine import RegisterConfig, RegisterFile
from repro.obs.metrics import METRICS
from repro.regalloc.options import PRESETS, AllocatorOptions
from repro.resilience import (
    fallback_rungs,
    record_resilience,
    resilient_allocate_program,
)

REGFILE = RegisterFile(RegisterConfig(6, 4, 2, 2))


class TestLadders:
    def test_primary_first_spillall_last(self):
        for preset in PRESETS:
            rungs = fallback_rungs(PRESETS[preset]())
            assert rungs[0].name == "primary"
            assert rungs[-1].options.kind == "spillall"

    def test_spillall_primary_is_one_rung(self):
        rungs = fallback_rungs(AllocatorOptions.spill_everywhere())
        assert [rung.name for rung in rungs] == ["primary"]

    def test_base_ladder_collapses_middle_rungs(self):
        # base Chaitin without coalescing *is* degraded *is* plain.
        names = [rung.name for rung in fallback_rungs(PRESETS["base"]())]
        assert names == ["primary", "no-coalesce", "spillall"]

    def test_improved_ladder_is_full(self):
        names = [rung.name for rung in fallback_rungs(PRESETS["improved"]())]
        assert names == ["primary", "no-coalesce", "degraded", "plain", "spillall"]

    def test_every_rung_is_a_distinct_configuration(self):
        for preset in PRESETS:
            rungs = fallback_rungs(PRESETS[preset]())
            options = [rung.options for rung in rungs]
            assert len(options) == len(set(options))


class TestResilientAllocation:
    def test_clean_run_wins_on_primary(self, small_call_program):
        allocation, report = resilient_allocate_program(
            small_call_program, REGFILE, PRESETS["improved"]()
        )
        assert report.rung == "primary"
        assert report.rung_index == 0
        assert not report.degraded
        assert report.attempts == 1
        assert report.demotions == ()
        assert allocation.functions

    def test_clean_run_matches_non_resilient(self, small_call_program):
        from repro.regalloc import allocate_program

        options = PRESETS["improved"]()
        resilient, _ = resilient_allocate_program(
            small_call_program, REGFILE, options
        )
        plain = allocate_program(small_call_program, REGFILE, options)
        for name, fa in plain.functions.items():
            got = resilient.functions[name]
            assert {repr(r): p.name for r, p in got.assignment.items()} == {
                repr(r): p.name for r, p in fa.assignment.items()
            }
            assert [repr(r) for r in got.spilled] == [repr(r) for r in fa.spilled]

    def test_report_attached_by_allocate_program(self, small_call_program):
        from repro.regalloc import allocate_program

        allocation = allocate_program(
            small_call_program, REGFILE, PRESETS["improved"](), resilient=True
        )
        assert allocation.resilience is not None
        assert allocation.resilience.requested == PRESETS["improved"]().label

    def test_report_as_dict_shape(self, small_call_program):
        _, report = resilient_allocate_program(
            small_call_program, REGFILE, PRESETS["base"]()
        )
        data = report.as_dict()
        assert set(data) == {
            "requested",
            "rung",
            "rung_index",
            "options",
            "attempts",
            "degraded",
            "demotions",
        }


class TestRecordResilience:
    def test_accepts_report_and_dict(self, small_call_program):
        _, report = resilient_allocate_program(
            small_call_program, REGFILE, PRESETS["base"]()
        )
        before = METRICS.as_dict()["counters"].get("resilience.runs", 0)
        record_resilience(report)
        record_resilience(report.as_dict())
        after = METRICS.as_dict()["counters"]["resilience.runs"]
        assert after == before + 2

    def test_bad_shape_rejected(self):
        with pytest.raises(KeyError):
            record_resilience({"not": "a report"})
