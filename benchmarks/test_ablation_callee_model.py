"""Ablation benchmark: shared vs first-user callee-save cost model."""

from repro.eval import ablation_callee_model


def test_ablation_callee_model(run_experiment):
    result = run_experiment("ablation_callee_model", ablation_callee_model)
    for (_, _), ratios in result.series.items():
        # Sharing the cost can only help this comparison on average.
        assert all(r > 0.5 for r in ratios)
