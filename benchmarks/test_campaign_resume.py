"""Benchmark: campaign resume payoff (cold run vs. journal replay).

A campaign's crash-safety costs something on the hot path — one
fsync'd journal append per computed point — and buys something on
resume: a rerun replays the journal instead of recomputing the grid.
This benchmark measures both sides on a real campaign: the cold run
(every point computed and journaled) against the resumed run (every
point skipped via replay), asserting the resume is strictly faster
and recording the journaling overhead per point for EXPERIMENTS.md.
"""

import time

from repro.campaign import parse_spec, run_campaign
from repro.eval import clear_caches

SPEC = {
    "campaign": {"name": "bench-resume"},
    "grid": {
        "workloads": ["compress", "li", "eqntott"],
        "presets": ["base", "improved"],
        "configs": [[4, 2, 2, 2], [6, 4, 2, 2]],
    },
    "run": {"shard_size": 4},
}


def test_resume_replays_instead_of_recomputing(results_dir, tmp_path):
    spec = parse_spec(SPEC)
    out = tmp_path / "campaign"

    clear_caches()
    cold_start = time.perf_counter()
    cold = run_campaign(spec, out)
    cold_seconds = time.perf_counter() - cold_start
    assert cold.complete and cold.counts() == {"computed": len(spec.points)}

    clear_caches()  # the resume may not lean on in-process caches
    warm_start = time.perf_counter()
    warm = run_campaign(spec, out)
    warm_seconds = time.perf_counter() - warm_start
    assert warm.digest == cold.digest
    assert warm.runs == 2

    assert warm_seconds < cold_seconds, (
        f"resume ({warm_seconds:.3f}s) should beat the cold run "
        f"({cold_seconds:.3f}s): it only replays the journal"
    )

    journal_bytes = (out / "journal.jsonl").stat().st_size
    report = "\n".join(
        [
            f"campaign resume, {len(spec.points)} points "
            "(journal replay vs. recompute)",
            f"cold run:  {cold_seconds:8.3f} s",
            f"resume:    {warm_seconds:8.3f} s",
            f"speedup:   {cold_seconds / warm_seconds:8.1f}x",
            f"journal:   {journal_bytes:8d} bytes "
            f"({journal_bytes // max(1, len(spec.points))} per point)",
        ]
    )
    (results_dir / "campaign_resume.txt").write_text(report + "\n")
