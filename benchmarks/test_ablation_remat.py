"""Ablation benchmark: rematerialization of constant-valued spills."""

from repro.eval.experiments import ablation_rematerialization


def test_ablation_rematerialization(run_experiment):
    result = run_experiment(
        "ablation_rematerialization", ablation_rematerialization
    )
    flat = [r for ratios in result.series.values() for r in ratios]
    # Rematerialization can only remove memory traffic.
    assert all(r >= 0.999 for r in flat)
