"""Benchmark: regenerate Figure 7 (improved-model cost decomposition)."""

from repro.eval import figure7


def test_figure7(run_experiment):
    result = run_experiment("figure7", figure7)
    for program in ("eqntott", "ear"):
        overheads = result.overheads[program]
        # With all improvements, the full file leaves almost nothing.
        assert overheads[-1].total <= overheads[0].total
