"""Benchmark: regenerate Table 3 (optimistic vs base, dynamic info)."""

from repro.eval import table3


def test_table3(run_experiment):
    result = run_experiment("table3", table3)
    assert len(result.series) == 14
    flat = [r for ratios in result.series.values() for r in ratios]
    near_one = sum(0.9 <= r <= 1.1 for r in flat)
    assert near_one >= len(flat) * 0.5
