"""Ablation benchmark: interprocedural save elision."""

from repro.eval.experiments import ablation_ipra


def test_ablation_ipra(run_experiment):
    result = run_experiment("ablation_ipra", ablation_ipra)
    flat = [r for ratios in result.series.values() for r in ratios]
    # Emission-level elision can only remove saves, never add them.
    assert all(r >= 0.999 for r in flat)
    assert max(flat) > 1.1  # and it visibly fires somewhere
