"""The tracer's no-op overhead gate (CI-enforced).

Every decision site in the allocator guards its emission with
``if tracer is not None and tracer.wants_events``; a disabled tracer
must therefore cost almost nothing.  This benchmark times full
allocations of a mid-sized workload three ways — no tracer, a
:class:`NullTracer` (the guard cost made measurable) and a recording
tracer — and fails if the NullTracer path is more than 10% slower
than the untraced path.

Plain ``perf_counter`` medians over interleaved repetitions, no
pytest-benchmark dependency, so CI can run this file directly.
"""

import statistics
import time

from repro.machine import RegisterConfig, register_file
from repro.obs import NullTracer, Tracer
from repro.regalloc import PRESETS, allocate_program
from repro.workloads import compile_workload

CONFIG = RegisterConfig(8, 6, 2, 2)
WORKLOAD = "compress"
ROUNDS = 9
#: The CI gate: guarded-but-disabled tracing within 10% of untraced.
MAX_NOOP_OVERHEAD = 0.10


def _time_once(compiled, tracer) -> float:
    start = time.perf_counter()
    allocate_program(
        compiled.program,
        register_file(CONFIG),
        PRESETS["improved"](),
        compiled.dynamic_weights,
        tracer=tracer,
    )
    return time.perf_counter() - start


def _medians():
    compiled = compile_workload(WORKLOAD)
    _time_once(compiled, None)  # warm compile/analysis caches
    samples = {"none": [], "null": [], "recording": []}
    # Interleave the variants so drift (thermal, GC) hits all equally.
    for _ in range(ROUNDS):
        samples["none"].append(_time_once(compiled, None))
        samples["null"].append(_time_once(compiled, NullTracer()))
        samples["recording"].append(_time_once(compiled, Tracer()))
    return {k: statistics.median(v) for k, v in samples.items()}


def test_disabled_tracer_overhead_within_10_percent():
    medians = _medians()
    overhead = medians["null"] / medians["none"] - 1.0
    assert overhead < MAX_NOOP_OVERHEAD, (
        f"NullTracer allocation is {overhead:.1%} slower than untraced "
        f"(limit {MAX_NOOP_OVERHEAD:.0%}): "
        f"untraced={medians['none'] * 1e3:.2f}ms "
        f"null={medians['null'] * 1e3:.2f}ms"
    )


def test_recording_tracer_overhead_is_bounded():
    """Recording everything is allowed to cost, but not explode."""
    medians = _medians()
    assert medians["recording"] < medians["none"] * 3.0, (
        f"recording tracer tripled allocation time: "
        f"untraced={medians['none'] * 1e3:.2f}ms "
        f"recording={medians['recording'] * 1e3:.2f}ms"
    )
