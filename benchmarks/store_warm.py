#!/usr/bin/env python
"""Cold-vs-warm benchmark for the persistent artifact store.

Runs the full 14-workload allocation grid three times, each in a
fresh subprocess (so no in-process cache can cheat):

1. **disabled** — no store configured: the reference for results and
   for what "cold" costs without the store machinery;
2. **cold** — an empty store directory: every workload misses,
   profiles, and publishes its artifact;
3. **warm** — the same directory again: every workload rehydrates.

Each child reports wall-clock seconds, the store traffic counters,
and a SHA-256 digest over every measurement (overheads, cycles,
profile entry counts).  The parent asserts nothing itself — it emits
one JSON report; ``benchmarks/compare.py --store`` is the gate
(digests identical, warm hits nonzero, speedup over the committed
``BENCH_store.json`` floor).

Usage::

    PYTHONPATH=src python benchmarks/store_warm.py --out BENCH_store.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def child_main() -> int:
    """One measured grid run, results digested (invoked in a subprocess).

    The store is configured purely through ``REPRO_STORE_DIR`` — the
    exact inheritance path grid pool workers and serving workers use.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.eval.runner import compute_measurement
    from repro.machine import RegisterConfig
    from repro.obs.metrics import METRICS
    from repro.regalloc.options import AllocatorOptions
    from repro.workloads.registry import compile_workload, workload_names

    names = workload_names()
    options = AllocatorOptions()
    config = RegisterConfig(6, 4, 2, 2)
    started = time.perf_counter()
    results = []
    for name in names:
        compiled = compile_workload(name)
        measurement = compute_measurement(name, options, config)
        overhead = measurement.overhead
        results.append(
            {
                "workload": name,
                "spill": overhead.spill,
                "caller_save": overhead.caller_save,
                "callee_save": overhead.callee_save,
                "shuffle": overhead.shuffle,
                "cycles": measurement.cycles,
                "entry_counts": dict(compiled.profile.entry_counts),
                "baseline_instructions": (
                    compiled.baseline.instructions_executed
                ),
            }
        )
    elapsed = time.perf_counter() - started
    canonical = json.dumps(results, sort_keys=True, separators=(",", ":"))
    counters = METRICS.as_dict()["counters"]
    print(
        json.dumps(
            {
                "seconds": elapsed,
                "workloads": len(names),
                "digest": hashlib.sha256(canonical.encode()).hexdigest(),
                "store_hits": int(counters.get("store.hit", 0)),
                "store_misses": int(counters.get("store.miss", 0)),
                "store_writes": int(counters.get("store.write", 0)),
            }
        )
    )
    return 0


def run_child(store_dir: "str | None") -> dict:
    env = dict(os.environ)
    env.pop("REPRO_STORE_DIR", None)
    if store_dir is not None:
        env["REPRO_STORE_DIR"] = store_dir
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--child"],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument(
        "--out", type=Path, default=None, help="write the JSON report here"
    )
    args = parser.parse_args(argv)
    if args.child:
        return child_main()

    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as root:
        disabled = run_child(None)
        cold = run_child(root)
        warm = run_child(root)

    speedup = (
        cold["seconds"] / warm["seconds"] if warm["seconds"] > 0 else 0.0
    )
    report = {
        "schema_version": 1,
        "workloads": cold["workloads"],
        "disabled_seconds": round(disabled["seconds"], 4),
        "cold_seconds": round(cold["seconds"], 4),
        "warm_seconds": round(warm["seconds"], 4),
        "speedup": round(speedup, 2),
        "cold_writes": cold["store_writes"],
        "warm_hits": warm["store_hits"],
        "warm_misses": warm["store_misses"],
        "identical": (
            disabled["digest"] == cold["digest"] == warm["digest"]
        ),
        "digest": disabled["digest"],
    }
    rendered = json.dumps(report, indent=2, sort_keys=True)
    print(rendered)
    if args.out is not None:
        args.out.write_text(rendered + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
