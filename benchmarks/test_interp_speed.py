"""Micro-benchmarks: raw execution speed of both interpreters.

The source interpreter produces every profile and every semantics
baseline; the machine interpreter executes every allocated program of
every experiment.  Both are timed on one full gcc run so dispatch
regressions (the precompiled closure path replacing the isinstance
chain) show up independently of the allocator.
"""

import pytest

from repro.machine import RegisterConfig, register_file
from repro.profile import run_allocated
from repro.profile.interp import run_program
from repro.regalloc import AllocatorOptions, allocate_program
from repro.workloads import compile_workload

CONFIG = RegisterConfig(8, 6, 2, 2)


def test_source_interp_speed(benchmark):
    compiled = compile_workload("gcc")

    def target():
        return run_program(compiled.program)

    result = benchmark(target)
    assert result.return_value == compiled.baseline.return_value


def test_machine_interp_speed(benchmark):
    compiled = compile_workload("gcc")
    allocation = allocate_program(
        compiled.program,
        register_file(CONFIG),
        AllocatorOptions.improved_chaitin(),
        compiled.dynamic_weights,
    )

    def target():
        return run_allocated(allocation)

    result = benchmark(target)
    assert result.return_value == compiled.baseline.return_value
