"""Benchmark: regenerate Figure 10 (priority-based vs improved)."""

from repro.eval import figure10


def test_figure10(run_experiment):
    result = run_experiment("figure10", figure10)
    # Improved Chaitin at least matches priority-based on nasa7.
    improved = result.values("nasa7", "improved/dynamic")
    priority = result.values("nasa7", "priority/dynamic")
    assert sum(i >= p * 0.999 for i, p in zip(improved, priority)) >= len(improved) - 1
