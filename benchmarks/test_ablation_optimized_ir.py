"""Ablation benchmark: allocation on optimized vs unoptimized IR."""

from repro.eval.experiments import ablation_optimized_ir


def test_ablation_optimized_ir(run_experiment):
    result = run_experiment("ablation_optimized_ir", ablation_optimized_ir)
    for (_, _), ratios in result.series.items():
        assert all(r > 0.3 for r in ratios)
