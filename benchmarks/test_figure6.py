"""Benchmark: regenerate Figure 6 (enhancement combinations)."""

from repro.eval import figure6


def test_figure6(run_experiment):
    result = run_experiment("figure6", figure6)
    # Class 1 (ear): improvements grow with register count.
    ear = result.values("ear", "SC+BS+PR")
    assert ear[-1] >= ear[0]
    # Headline factor on the eqntott class.
    assert max(result.values("eqntott", "SC+BS+PR")) > 10.0
