"""Ablation benchmark: blocking-spill candidate metrics."""

from repro.eval.experiments import ablation_spill_metric


def test_ablation_spill_metric(run_experiment):
    result = run_experiment("ablation_spill_metric", ablation_spill_metric)
    flat = [r for ratios in result.series.values() for r in ratios]
    assert all(r > 0.2 for r in flat)
