"""The request-telemetry no-op overhead gate (CI-enforced).

The tentpole promise of the telemetry work is that *untraced runs pay
~nothing*: every hook in the engine and serving stack is guarded by
``if trace_id is None``, so a request without a trace identity must
allocate at effectively the same speed as before telemetry existed.
This benchmark times ``AllocationEngine.submit`` three ways —
untraced, telemetry (span-only tracing) and full decision trace — and
fails if telemetered submission is more than 10% slower than
untraced.  Caching is disabled so every submit really allocates.

Plain ``perf_counter`` medians over interleaved repetitions, no
pytest-benchmark dependency, so CI can run this file directly.
"""

import itertools
import statistics
import time

from repro.engine import AllocationEngine, AllocationRequest
from repro.obs import mint_trace_id

WORKLOAD = "compress"
ROUNDS = 9
#: The CI gate: telemetry machinery within 10% when nothing is traced.
MAX_NOOP_OVERHEAD = 0.10

#: Each timed submit gets a unique (absurdly loose) deadline: the
#: deadline is part of the result-cache identity, so every submit
#: genuinely allocates instead of hitting the engine's content cache,
#: while a multi-hour budget never actually degrades anything.
_DEADLINES = itertools.count()


def _request(**overrides) -> AllocationRequest:
    fields = dict(
        workload=WORKLOAD,
        preset="improved",
        name="bench",
        deadline_seconds=36000.0 + next(_DEADLINES),
    )
    fields.update(overrides)
    return AllocationRequest(**fields)


def _time_once(engine, request) -> float:
    start = time.perf_counter()
    result = engine.submit(request)
    assert result.report is not None
    assert not result.cache_hit
    return time.perf_counter() - start


def _medians():
    engine = AllocationEngine()
    _time_once(engine, _request())  # warm compile/analysis caches
    samples = {"off": [], "telemetry": [], "trace": []}
    # Interleave the variants so drift (thermal, GC) hits all equally.
    for _ in range(ROUNDS):
        samples["off"].append(_time_once(engine, _request()))
        samples["telemetry"].append(
            _time_once(
                engine,
                _request(trace_id=mint_trace_id(), telemetry=True),
            )
        )
        samples["trace"].append(
            _time_once(
                engine, _request(trace_id=mint_trace_id(), trace=True)
            )
        )
    return {k: statistics.median(v) for k, v in samples.items()}


def test_untraced_requests_pay_nothing():
    medians = _medians()
    overhead = medians["telemetry"] / medians["off"] - 1.0
    assert overhead < MAX_NOOP_OVERHEAD, (
        f"telemetered submit is {overhead:.1%} slower than untraced "
        f"(limit {MAX_NOOP_OVERHEAD:.0%}): "
        f"untraced={medians['off'] * 1e3:.2f}ms "
        f"telemetry={medians['telemetry'] * 1e3:.2f}ms"
    )


def test_full_trace_overhead_is_bounded():
    """Recording the decision stream may cost, but not explode."""
    medians = _medians()
    assert medians["trace"] < medians["off"] * 3.0, (
        f"full tracing tripled submit time: "
        f"untraced={medians['off'] * 1e3:.2f}ms "
        f"trace={medians['trace'] * 1e3:.2f}ms"
    )
