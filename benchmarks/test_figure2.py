"""Benchmark: regenerate Figure 2 (base-model cost decomposition)."""

from repro.eval import figure2


def test_figure2(run_experiment):
    result = run_experiment("figure2", figure2)
    for program in ("eqntott", "ear"):
        overheads = result.overheads[program]
        # The paper's motivating shape: spill vanishes, call cost stays.
        assert overheads[-1].spill < overheads[0].spill + 1.0
        assert overheads[-1].call_cost >= overheads[-1].spill
