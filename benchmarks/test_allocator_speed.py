"""Micro-benchmarks: raw allocation speed of each allocator.

These time one full allocation of a mid-sized workload (compile and
profile excluded via caching) so regressions in the allocator's own
complexity show up independently of the experiment drivers.
"""

import pytest

from repro.machine import RegisterConfig, register_file
from repro.regalloc import AllocatorOptions, allocate_program
from repro.workloads import compile_workload

CONFIG = RegisterConfig(8, 6, 2, 2)

ALLOCATORS = {
    "base": AllocatorOptions.base_chaitin(),
    "optimistic": AllocatorOptions.optimistic_coloring(),
    "improved": AllocatorOptions.improved_chaitin(),
    "priority": AllocatorOptions.priority_based(),
    "cbh": AllocatorOptions.cbh(),
}


@pytest.mark.parametrize("name", sorted(ALLOCATORS))
def test_allocation_speed(benchmark, name):
    compiled = compile_workload("gcc")
    rf = register_file(CONFIG)
    options = ALLOCATORS[name]

    def target():
        return allocate_program(
            compiled.program, rf, options, compiled.dynamic_weights
        )

    allocation = benchmark(target)
    assert allocation.functions
