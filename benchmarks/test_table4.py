"""Benchmark: regenerate Table 4 (execution-time speedups)."""

from repro.eval import table4


def test_table4(run_experiment):
    result = run_experiment("table4", table4)
    for program in ("compress", "eqntott", "li", "sc"):
        assert result.speedups[program] > 0.0
    assert abs(result.speedups["spice"]) < 1.0
