"""Ablation benchmark: the three priority-based ordering strategies."""

from repro.eval import ablation_priority_order


def test_ablation_priority_order(run_experiment):
    result = run_experiment("ablation_priority_order", ablation_priority_order)
    labels = {label for (_, label) in result.series}
    assert labels == {"remove_unconstrained", "sort_unconstrained", "sorting"}
