"""Shared infrastructure for the benchmark harness.

Each benchmark regenerates one table or figure of the paper on the
full canonical sweep, times the regeneration (with measurement caches
cleared, so the figure's true cost is measured), and writes the
rendered result to ``benchmarks/results/<name>.txt`` — the files
EXPERIMENTS.md is compiled from.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def run_experiment(benchmark, results_dir):
    """Benchmark an experiment driver once and persist its rendering."""

    def runner(name: str, driver, *args, **kwargs):
        from repro.eval import clear_caches

        def target():
            clear_caches()
            return driver(*args, **kwargs)

        result = benchmark.pedantic(target, rounds=1, iterations=1)
        (results_dir / f"{name}.txt").write_text(result.render() + "\n")
        return result

    return runner
