#!/usr/bin/env python
"""Gate benchmark runs against the committed baseline.

Usage::

    python benchmarks/compare.py RUN.json [--baseline BENCH_allocator.json]
                                          [--threshold 0.15]

``RUN.json`` is a fresh ``pytest --benchmark-json`` output covering
the speed suite (``test_allocator_speed.py``,
``test_reconstruction_speed.py``, ``test_interp_speed.py``).  Every
benchmark shared with the baseline is compared by median; the run
fails (exit code 1) if any median regressed by more than the
threshold (default 15%).  Benchmarks present in only one of the two
files are reported but never fail the gate — new benchmarks land
before their baseline does, and retired ones linger in old baselines.

To refresh the baseline after an intentional performance change::

    PYTHONPATH=src python -m pytest benchmarks/test_allocator_speed.py \
        benchmarks/test_reconstruction_speed.py \
        benchmarks/test_interp_speed.py \
        --benchmark-json=BENCH_allocator.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_allocator.json"


def load_medians(path: Path) -> dict:
    """``{benchmark fullname: median seconds}`` from one JSON report."""
    with path.open() as handle:
        report = json.load(handle)
    return {
        bench["fullname"]: bench["stats"]["median"]
        for bench in report.get("benchmarks", [])
    }


def compare(
    baseline: dict, current: dict, threshold: float
) -> "tuple[list, list]":
    """Return ``(rows, regressions)`` for the shared benchmarks."""
    rows = []
    regressions = []
    for name in sorted(baseline.keys() & current.keys()):
        old, new = baseline[name], current[name]
        ratio = new / old if old else float("inf")
        regressed = ratio > 1.0 + threshold
        rows.append((name, old, new, ratio, regressed))
        if regressed:
            regressions.append(name)
    return rows, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when benchmark medians regress past the baseline"
    )
    parser.add_argument("run", type=Path, help="fresh pytest-benchmark JSON")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"committed baseline JSON (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="allowed median regression as a fraction (default: 0.15)",
    )
    args = parser.parse_args(argv)

    baseline = load_medians(args.baseline)
    current = load_medians(args.run)
    rows, regressions = compare(baseline, current, args.threshold)

    if not rows:
        print("no shared benchmarks between run and baseline", file=sys.stderr)
        return 1

    width = max(len(name) for name, *_ in rows)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}  ratio")
    for name, old, new, ratio, regressed in rows:
        flag = "  << REGRESSION" if regressed else ""
        print(
            f"{name:<{width}}  {old * 1e3:>8.2f}ms  {new * 1e3:>8.2f}ms  "
            f"{ratio:>5.2f}x{flag}"
        )

    for name in sorted(baseline.keys() - current.keys()):
        print(f"note: {name} is in the baseline but not in this run")
    for name in sorted(current.keys() - baseline.keys()):
        print(f"note: {name} has no baseline yet")

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed more than "
            f"{args.threshold:.0%} over the baseline",
            file=sys.stderr,
        )
        return 1
    print(f"\nall {len(rows)} shared benchmark(s) within {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
