#!/usr/bin/env python
"""Gate benchmark runs against the committed baseline.

Usage::

    python benchmarks/compare.py RUN.json [--baseline BENCH_allocator.json]
                                          [--threshold 0.15]

``RUN.json`` is a fresh ``pytest --benchmark-json`` output covering
the speed suite (``test_allocator_speed.py``,
``test_reconstruction_speed.py``, ``test_interp_speed.py``).  Every
benchmark shared with the baseline is compared by median; the run
fails (exit code 1) if any median regressed by more than the
threshold (default 15%).  Benchmarks present in only one of the two
files are reported but never fail the gate — new benchmarks land
before their baseline does, and retired ones linger in old baselines.

To refresh the baseline after an intentional performance change::

    PYTHONPATH=src python -m pytest benchmarks/test_allocator_speed.py \
        benchmarks/test_reconstruction_speed.py \
        benchmarks/test_interp_speed.py \
        --benchmark-json=BENCH_allocator.json

``--serve`` switches to the serving-latency gate: ``RUN.json`` is a
``repro loadgen`` report (``--spawn --out RUN.json``) compared
against the committed ``BENCH_serve.json`` baseline.  The gate fails
on any hard-failed request, on zero cache hits, or when p50/p99
latency regresses past the (deliberately generous — shared runners
are noisy) serve threshold.  Refresh with::

    PYTHONPATH=src python -m repro loadgen --spawn --requests 200 \
        --concurrency 8 --out BENCH_serve.json

``--store`` gates the artifact-store warm-path benchmark: ``RUN.json``
is a ``benchmarks/store_warm.py`` report compared against the
committed ``BENCH_store.json``.  Correctness is absolute — the three
runs (store disabled, cold, warm) must be digest-identical and the
warm run must actually hit the store — and the warm speedup has a
hard 2x floor plus a relative check against the baseline.  Refresh
with::

    PYTHONPATH=src python benchmarks/store_warm.py --out BENCH_store.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_allocator.json"
DEFAULT_SERVE_BASELINE = REPO_ROOT / "BENCH_serve.json"
DEFAULT_STORE_BASELINE = REPO_ROOT / "BENCH_store.json"

#: The acceptance floor for the warm path: a second run of the full
#: workload sweep against a populated store must be at least this
#: many times faster than the cold run, whatever the baseline says.
STORE_SPEEDUP_FLOOR = 2.0


def load_medians(path: Path) -> dict:
    """``{benchmark fullname: median seconds}`` from one JSON report."""
    with path.open() as handle:
        report = json.load(handle)
    return {
        bench["fullname"]: bench["stats"]["median"]
        for bench in report.get("benchmarks", [])
    }


def compare(
    baseline: dict, current: dict, threshold: float
) -> "tuple[list, list]":
    """Return ``(rows, regressions)`` for the shared benchmarks."""
    rows = []
    regressions = []
    for name in sorted(baseline.keys() & current.keys()):
        old, new = baseline[name], current[name]
        ratio = new / old if old else float("inf")
        regressed = ratio > 1.0 + threshold
        rows.append((name, old, new, ratio, regressed))
        if regressed:
            regressions.append(name)
    return rows, regressions


def compare_serve(run_path: Path, baseline_path: Path, threshold: float) -> int:
    """Gate one ``repro loadgen`` report against the serve baseline.

    Correctness is absolute (no failed requests, cache hits present);
    latency is relative to the committed baseline with a generous
    threshold, because wall-clock on shared runners is noisy in a way
    allocator medians are not.
    """
    with run_path.open() as handle:
        run = json.load(handle)
    with baseline_path.open() as handle:
        baseline = json.load(handle)

    problems = []
    if run.get("failed", 0) != 0:
        problems.append(f"{run['failed']} request(s) hard-failed")
    if run.get("ok", 0) != run.get("requests", 0):
        problems.append(
            f"only {run.get('ok', 0)}/{run.get('requests', 0)} requests ok"
        )
    if run.get("cache_hits", 0) == 0:
        problems.append("content cache recorded zero hits")

    print(
        f"{'metric':<10} {'baseline':>12} {'current':>12}  ratio"
    )
    for metric in ("p50_ms", "p99_ms"):
        old, new = baseline.get(metric, 0.0), run.get(metric, 0.0)
        ratio = new / old if old else float("inf")
        regressed = old > 0 and ratio > 1.0 + threshold
        flag = "  << REGRESSION" if regressed else ""
        print(f"{metric:<10} {old:>10.2f}ms {new:>10.2f}ms  {ratio:>5.2f}x{flag}")
        if regressed:
            problems.append(
                f"{metric} regressed {ratio:.2f}x over baseline "
                f"(allowed {1.0 + threshold:.2f}x)"
            )
    print(
        f"{'req/s':<10} {baseline.get('requests_per_sec', 0.0):>12.1f} "
        f"{run.get('requests_per_sec', 0.0):>12.1f}"
    )
    print(
        f"throttled retries: {run.get('throttled_retries', 0)}, "
        f"cache hits: {run.get('cache_hits', 0)}/{run.get('requests', 0)}"
    )

    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print(f"\nserve gate passed (threshold {threshold:.0%})")
    return 0


def compare_store(run_path: Path, baseline_path: Path, threshold: float) -> int:
    """Gate one ``store_warm.py`` report against the store baseline.

    Correctness is absolute: the disabled, cold and warm runs must
    produce one digest (the store changed nothing but the clock), the
    warm run must hit the store, and the cold run must populate it.
    Speed has a hard floor (``STORE_SPEEDUP_FLOOR``) plus a relative
    bound: the measured speedup may not collapse below
    ``(1 - threshold)`` of the committed baseline's.
    """
    with run_path.open() as handle:
        run = json.load(handle)
    with baseline_path.open() as handle:
        baseline = json.load(handle)

    problems = []
    if not run.get("identical", False):
        problems.append(
            "warm-path results diverged: disabled/cold/warm digests differ"
        )
    if run.get("warm_hits", 0) <= 0:
        problems.append("warm run recorded zero store hits")
    if run.get("cold_writes", 0) <= 0:
        problems.append("cold run published zero artifacts")
    speedup = run.get("speedup", 0.0)
    if speedup < STORE_SPEEDUP_FLOOR:
        problems.append(
            f"warm speedup {speedup:.2f}x is below the "
            f"{STORE_SPEEDUP_FLOOR:.1f}x floor"
        )
    base_speedup = baseline.get("speedup", 0.0)
    allowed = base_speedup * (1.0 - threshold)
    if base_speedup > 0 and speedup < allowed:
        problems.append(
            f"warm speedup {speedup:.2f}x collapsed below "
            f"{allowed:.2f}x ({1.0 - threshold:.0%} of the baseline's "
            f"{base_speedup:.2f}x)"
        )

    print(f"{'metric':<16} {'baseline':>12} {'current':>12}")
    for metric in ("cold_seconds", "warm_seconds", "speedup"):
        print(
            f"{metric:<16} {baseline.get(metric, 0.0):>12.3f} "
            f"{run.get(metric, 0.0):>12.3f}"
        )
    print(
        f"warm hits: {run.get('warm_hits', 0)}/{run.get('workloads', 0)} "
        f"workloads, cold writes: {run.get('cold_writes', 0)}, "
        f"identical: {run.get('identical')}"
    )

    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print(f"\nstore gate passed (floor {STORE_SPEEDUP_FLOOR:.1f}x)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when benchmark medians regress past the baseline"
    )
    parser.add_argument("run", type=Path, help="fresh pytest-benchmark JSON")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"committed baseline JSON (default: {DEFAULT_BASELINE}, "
        f"or {DEFAULT_SERVE_BASELINE} with --serve)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="allowed regression as a fraction (default: 0.15, "
        "or 3.0 with --serve)",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="gate a repro loadgen latency report instead of the "
        "pytest-benchmark speed suite",
    )
    parser.add_argument(
        "--store",
        action="store_true",
        help="gate a benchmarks/store_warm.py artifact-store report "
        "instead of the pytest-benchmark speed suite",
    )
    args = parser.parse_args(argv)

    if args.store:
        return compare_store(
            args.run,
            args.baseline or DEFAULT_STORE_BASELINE,
            0.5 if args.threshold is None else args.threshold,
        )
    if args.serve:
        return compare_serve(
            args.run,
            args.baseline or DEFAULT_SERVE_BASELINE,
            3.0 if args.threshold is None else args.threshold,
        )
    if args.threshold is None:
        args.threshold = 0.15
    if args.baseline is None:
        args.baseline = DEFAULT_BASELINE

    baseline = load_medians(args.baseline)
    current = load_medians(args.run)
    rows, regressions = compare(baseline, current, args.threshold)

    if not rows:
        print("no shared benchmarks between run and baseline", file=sys.stderr)
        return 1

    width = max(len(name) for name, *_ in rows)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}  ratio")
    for name, old, new, ratio, regressed in rows:
        flag = "  << REGRESSION" if regressed else ""
        print(
            f"{name:<{width}}  {old * 1e3:>8.2f}ms  {new * 1e3:>8.2f}ms  "
            f"{ratio:>5.2f}x{flag}"
        )

    for name in sorted(baseline.keys() - current.keys()):
        print(f"note: {name} is in the baseline but not in this run")
    for name in sorted(current.keys() - baseline.keys()):
        print(f"note: {name} has no baseline yet")

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed more than "
            f"{args.threshold:.0%} over the baseline",
            file=sys.stderr,
        )
        return 1
    print(f"\nall {len(rows)} shared benchmark(s) within {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
