"""Benchmark: sweep-layer caching payoff (cold vs. warm grids).

The pipeline-manager refactor makes experiment sweeps share work at
two levels: the ``ResultCache`` memoizes whole grid points, and the
per-workload ``AnalysisCache`` lets every (allocator, config) point of
a sweep reuse the CFG-shaped analyses of the original functions.  This
benchmark times one driver end to end cold (all caches dropped) and
warm (measurement cache pre-populated via ``run_grid``), asserts the
warm pass is strictly faster, and records both timings alongside the
other benchmark outputs.

On a multi-core box ``run_grid(jobs=N)`` additionally parallelizes the
cold pass; the identity of parallel and serial output is covered by
the test suite (tests/eval/test_result_cache.py, tests/cli/test_cli.py),
so here only the caching payoff is measured.
"""

import time

from repro.eval import clear_caches, experiment_grid, run_grid, table2
from repro.eval.runner import RESULTS


def test_warm_cache_beats_cold_sweep(results_dir):
    clear_caches()
    cold_start = time.perf_counter()
    cold = table2()
    cold_seconds = time.perf_counter() - cold_start

    # Pre-warm exactly the grid the driver will request, then re-run.
    run_grid(experiment_grid(table2), jobs=1)
    RESULTS.hits = RESULTS.misses = 0
    warm_start = time.perf_counter()
    warm = table2()
    warm_seconds = time.perf_counter() - warm_start

    assert warm.render() == cold.render()
    assert RESULTS.misses == 0, "warm run should be served entirely from cache"
    assert warm_seconds < cold_seconds

    report = "\n".join(
        [
            "table2 sweep, cold vs. warm measurement cache",
            f"cold:  {cold_seconds:8.3f} s",
            f"warm:  {warm_seconds:8.3f} s",
            f"ratio: {cold_seconds / warm_seconds:8.1f}x",
        ]
    )
    (results_dir / "sweep_speed.txt").write_text(report + "\n")
