"""Benchmark: regenerate Figure 11 (improved Chaitin vs CBH)."""

from repro.eval import figure11


def test_figure11(run_experiment):
    result = run_experiment("figure11", figure11)
    # CBH never beats improved at the convention minimum.
    for program in ("alvinn", "ear", "li", "matrix300", "nasa7"):
        improved = result.values(program, "improved/dynamic")
        cbh = result.values(program, "CBH/dynamic")
        assert cbh[0] <= improved[0] + 1e-9
