"""Benchmark: regenerate Figure 9 (optimistic vs improved, fpppp)."""

from repro.eval import figure9


def test_figure9(run_experiment):
    result = run_experiment("figure9", figure9)
    assert max(result.values("fpppp", "optimistic")) > 1.0
