"""Benchmark: the static-information penalty (companion-TR question)."""

from repro.eval.experiments import static_penalty


def test_static_penalty(run_experiment):
    result = run_experiment("static_penalty", static_penalty)
    import math

    for (program, _), ratios in result.series.items():
        # Profiles rarely lose (small static luck is possible); the
        # penalty is unbounded in principle (static can miss a nearly
        # overhead-free allocation, e.g. gcc's 100x cell) but finite.
        assert all(r >= 0.7 and math.isfinite(r) for r in ratios), program
