"""Benchmark: graph reconstruction vs. full rebuild (compile time).

The paper's Figure 1 includes the reconstruction box because
rebuilding the interference graph on every spill iteration is the
expensive part of Chaitin-style allocation.  This benchmark allocates
a spill-heavy workload both ways; the assertion only checks the
results agree — the timing comparison is the benchmark output itself.
"""

import pytest

from repro.machine import RegisterConfig, register_file
from repro.regalloc import AllocatorOptions, allocate_program
from repro.workloads import compile_workload

#: Small enough to force several spill iterations per function.
CONFIG = RegisterConfig(4, 4, 1, 1)


@pytest.mark.parametrize("reconstruct", [False, True], ids=["rebuild", "reconstruct"])
def test_allocation_with_and_without_reconstruction(benchmark, reconstruct):
    compiled = compile_workload("fpppp")
    rf = register_file(CONFIG)
    options = AllocatorOptions.improved_chaitin()

    def target():
        return allocate_program(
            compiled.program,
            rf,
            options,
            compiled.dynamic_weights,
            reconstruct=reconstruct,
        )

    allocation = benchmark(target)
    assert all(fa.iterations >= 2 for fa in allocation.functions.values() if fa.spilled)


def test_reconstruction_identical_results():
    compiled = compile_workload("fpppp")
    rf = register_file(CONFIG)
    options = AllocatorOptions.improved_chaitin()
    plain = allocate_program(
        compiled.program, rf, options, compiled.dynamic_weights
    )
    incremental = allocate_program(
        compiled.program, rf, options, compiled.dynamic_weights, reconstruct=True
    )
    for name in plain.functions:
        a = {r.id: p.name for r, p in plain.functions[name].assignment.items()}
        b = {
            r.id: p.name
            for r, p in incremental.functions[name].assignment.items()
        }
        assert a == b
