"""Benchmark: regenerate Table 2 (optimistic vs base, static info)."""

from repro.eval import table2


def test_table2(run_experiment):
    result = run_experiment("table2", table2)
    assert len(result.series) == 14
    # Optimistic coloring is a small effect either way.
    for (_, _), ratios in result.series.items():
        assert all(0.1 < r < 10.0 for r in ratios)
