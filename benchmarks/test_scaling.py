"""Benchmark: allocation time as a function of program size.

Generated programs of increasing size, allocated by the improved
allocator.  Watches for super-linear blowups in the graph build /
simplify / assign pipeline.
"""

import pytest

from repro.machine import RegisterConfig, register_file
from repro.regalloc import AllocatorOptions, allocate_program
from repro.workloads.generator import random_program

SIZES = {
    "small": dict(max_funcs=2, max_stmts=4),
    "medium": dict(max_funcs=4, max_stmts=10),
    "large": dict(max_funcs=6, max_stmts=22),
}


@pytest.mark.parametrize("size", list(SIZES))
def test_allocation_scaling(benchmark, size):
    # A fixed seed per size keeps the benchmark comparable across runs.
    program = random_program(2024, **SIZES[size])
    rf = register_file(RegisterConfig(6, 4, 2, 2))
    options = AllocatorOptions.improved_chaitin()

    def target():
        return allocate_program(program, rf, options)

    allocation = benchmark(target)
    total_instrs = sum(
        fa.func.size() for fa in allocation.functions.values()
    )
    benchmark.extra_info["instructions"] = total_instrs
    assert allocation.functions
