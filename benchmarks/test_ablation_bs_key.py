"""Ablation benchmark: delta key vs max key in simplification."""

from repro.eval import ablation_bs_key


def test_ablation_bs_key(run_experiment):
    result = run_experiment("ablation_bs_key", ablation_bs_key)
    flat = [r for ratios in result.series.values() for r in ratios]
    assert all(r > 0.3 for r in flat)
